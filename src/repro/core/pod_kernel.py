"""The POD-Attention fused kernel (the paper's primary contribution).

``build_pod_kernel`` assembles a single kernel that computes both the prefill
and the decode attention of a hybrid batch:

1. prefill tile work is generated with the configuration's prefill tile shape
   and with KV splits limited to two waves (§4.2.4);
2. decode tile work is generated with the 16-row decode tile (§4.2.1) and
   grouped into *virtual CTAs* so that several one-warp decode units share the
   shared-memory allocation of one physical CTA (§4.2.3);
3. the kernel is launched with ``num_prefill_ctas + num_decode_ctas`` generic
   CTAs whose work is bound at dispatch time by the SM-aware scheduler
   (§4.1 / Figure 9), guaranteeing prefill/decode co-location on every SM.

:class:`PODAttention` wraps this into the same executor interface as the
baselines in ``repro.attention.executors`` so it can be compared and plugged
into the serving stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attention.cost_model import (
    AttentionCostParams,
    batch_decode_ctas,
    batch_prefill_ctas,
)
from repro.attention.executors import AttentionExecutor
from repro.attention.kernels import fa_decode_kernel, fa_prefill_kernel
from repro.attention.metrics import AttentionRunResult
from repro.attention.workload import HybridBatch
from repro.core.scheduling_policy import ProportionalPolicy, SchedulingPolicy
from repro.core.sm_aware import DECODE, PREFILL, SMAwareScheduler
from repro.core.tile_config import PODConfig, select_pod_config
from repro.gpu.cta import CTAWork
from repro.gpu.engine import ExecutionEngine
from repro.gpu.kernel import Kernel, KernelLaunch
from repro.models.config import Deployment


def group_virtual_decode_ctas(
    decode_units: list[CTAWork], virtual_factor: int
) -> list[CTAWork]:
    """Pack ``virtual_factor`` one-warp decode work units into each physical CTA.

    Each physical decode CTA of the fused kernel hosts several *virtual CTAs*
    (one warp each) so that the decode side does not waste the shared-memory
    allocation sized for prefill (§4.2.3).
    """
    if virtual_factor <= 0:
        raise ValueError(f"virtual_factor must be > 0, got {virtual_factor}")
    grouped: list[CTAWork] = []
    for start in range(0, len(decode_units), virtual_factor):
        chunk = decode_units[start : start + virtual_factor]
        flops = sum(unit.flops for unit in chunk)
        dram_bytes = sum(unit.dram_bytes for unit in chunk)
        fixed = max(unit.fixed_time for unit in chunk)
        grouped.append(
            CTAWork(
                flops=flops,
                dram_bytes=dram_bytes,
                tag=DECODE,
                fixed_time=fixed,
                meta={"virtual_units": len(chunk), "first_unit": dict(chunk[0].meta)},
            )
        )
    return grouped


@dataclass
class PODKernelPlan:
    """Everything needed to launch (and audit) one POD-Attention kernel."""

    kernel: Kernel
    scheduler: SMAwareScheduler
    config: PODConfig
    num_prefill_ctas: int
    num_decode_ctas: int

    @property
    def total_ctas(self) -> int:
        return self.num_prefill_ctas + self.num_decode_ctas


def build_pod_kernel(
    deployment: Deployment,
    batch: HybridBatch,
    params: AttentionCostParams | None = None,
    config: PODConfig | None = None,
    policy: SchedulingPolicy | None = None,
    limit_prefill_splits: bool = True,
    name: str = "POD_Attention",
) -> PODKernelPlan:
    """Build the fused POD-Attention kernel for a hybrid batch.

    Raises ``ValueError`` for non-hybrid batches: POD falls back to the
    specialized kernels in that case (handled by :class:`PODAttention`).
    """
    if not batch.is_hybrid:
        raise ValueError("POD-Attention fuses prefill and decode; batch is not hybrid")
    params = params or AttentionCostParams()
    config = config or select_pod_config(deployment, batch)
    policy = policy or ProportionalPolicy()

    max_prefill = config.max_prefill_ctas(deployment.gpu) if limit_prefill_splits else None
    prefill_works = batch_prefill_ctas(
        deployment, batch, tile=config.prefill_tile, params=params, max_prefill_ctas=max_prefill
    )
    decode_units = batch_decode_ctas(deployment, batch, tile=config.decode_tile, params=params)
    decode_works = group_virtual_decode_ctas(decode_units, config.virtual_decode_factor)

    scheduler = SMAwareScheduler(
        num_sms=deployment.gpu.num_sms,
        num_prefill_ctas=len(prefill_works),
        num_decode_ctas=len(decode_works),
        policy=policy,
    )

    def binder(sm_id: int, dispatch_index: int) -> CTAWork:
        assignment = scheduler.assign(sm_id)
        if assignment.op == PREFILL:
            return prefill_works[assignment.cta_id]
        return decode_works[assignment.cta_id]

    kernel = Kernel.with_binder(
        name=name,
        num_ctas=len(prefill_works) + len(decode_works),
        binder=binder,
        threads_per_cta=config.profile.threads_per_cta,
        shared_mem_per_cta=config.profile.shared_mem_bytes,
        registers_per_thread=config.profile.registers_per_thread,
        meta={"config": config.name, "policy": policy.name},
    )
    return PODKernelPlan(
        kernel=kernel,
        scheduler=scheduler,
        config=config,
        num_prefill_ctas=len(prefill_works),
        num_decode_ctas=len(decode_works),
    )


class PODAttention(AttentionExecutor):
    """POD-Attention executor: fused prefill/decode attention with SM-aware scheduling.

    For non-hybrid batches (prefill-only or decode-only) there is nothing to
    fuse, so the executor falls back to the specialized FlashAttention kernel —
    matching how the integrated serving system behaves.
    """

    name = "POD"

    def __init__(
        self,
        params: AttentionCostParams | None = None,
        config: PODConfig | None = None,
        policy: SchedulingPolicy | None = None,
        limit_prefill_splits: bool = True,
    ) -> None:
        super().__init__(params)
        self.config = config
        self.policy = policy
        self.limit_prefill_splits = limit_prefill_splits
        self.last_plan: PODKernelPlan | None = None

    def build_launches(self, deployment: Deployment, batch: HybridBatch) -> list[KernelLaunch]:
        if not batch.is_hybrid:
            kernel = (
                fa_prefill_kernel(deployment, batch, self.params)
                if batch.has_prefill
                else fa_decode_kernel(deployment, batch, self.params)
            )
            self.last_plan = None
            return [KernelLaunch(kernel=kernel, stream=0)] if kernel else []
        plan = build_pod_kernel(
            deployment,
            batch,
            params=self.params,
            config=self.config,
            policy=self.policy,
            limit_prefill_splits=self.limit_prefill_splits,
        )
        self.last_plan = plan
        return [KernelLaunch(kernel=plan.kernel, stream=0)]

    def run(
        self,
        deployment: Deployment,
        batch: HybridBatch,
        engine: ExecutionEngine | None = None,
    ) -> AttentionRunResult:
        result = super().run(deployment, batch, engine)
        if self.last_plan is not None:
            # Prefer the scheduler's own co-location accounting: it reflects the
            # runtime binding decisions exactly.
            result.colocation_fraction = max(
                result.colocation_fraction, self.last_plan.scheduler.colocation_fraction()
            )
        return result
