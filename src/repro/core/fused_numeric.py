"""Numerically exact fused prefill/decode attention (correctness companion).

The performance of POD-Attention is studied on the simulated GPU, but the
*correctness* of the fused schedule can be demonstrated exactly: this module
executes prefill tiles and decode tiles in the interleaved order chosen by the
SM-aware scheduler, maintaining independent online-softmax states per query
tile, and shows that the outputs match the dense reference no matter how the
two operations are interleaved.

Inputs are small NumPy tensors; this is a validation/illustration path, not a
performance path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.attention.online_softmax import OnlineSoftmaxState
from repro.attention.reference import attention_reference, decode_reference
from repro.core.scheduling_policy import ProportionalPolicy, SchedulingPolicy
from repro.core.sm_aware import PREFILL, SMAwareScheduler


@dataclass
class DecodeSequence:
    """One decode request's tensors: a single query position over its context."""

    q: np.ndarray  # [num_q_heads, 1, head_dim]
    k: np.ndarray  # [num_kv_heads, kv_len, head_dim]
    v: np.ndarray  # [num_kv_heads, kv_len, head_dim]


@dataclass
class FusedWorkItem:
    """One tile-level unit of fused work (a prefill Q-tile or a decode request head)."""

    op: str
    head: int
    index: int  # q-tile index for prefill, request index for decode


@dataclass
class FusedNumericResult:
    """Outputs of the fused numeric execution plus the schedule that produced them."""

    prefill_output: np.ndarray
    decode_outputs: list[np.ndarray]
    schedule: list[FusedWorkItem] = field(repr=False, default_factory=list)


def _prefill_work_items(num_q_heads: int, q_len: int, tile_q: int) -> list[FusedWorkItem]:
    q_tiles = math.ceil(q_len / tile_q)
    return [
        FusedWorkItem(op="prefill", head=head, index=tile)
        for head in range(num_q_heads)
        for tile in range(q_tiles)
    ]


def pod_fused_attention_numeric(
    prefill_q: np.ndarray,
    prefill_k: np.ndarray,
    prefill_v: np.ndarray,
    decodes: list[DecodeSequence],
    *,
    tile_q: int = 16,
    tile_kv: int = 16,
    num_sms: int = 8,
    policy: SchedulingPolicy | None = None,
    scale: float | None = None,
) -> FusedNumericResult:
    """Compute prefill and decode attention in one fused, interleaved pass.

    The work items (prefill Q-tiles and decode request-heads) are consumed in
    the order the SM-aware scheduler binds them to simulated CTAs, mimicking
    the fused kernel's execution; each item streams its KV tiles through an
    online-softmax state.  Outputs are exact.
    """
    num_q_heads, q_len, head_dim = prefill_q.shape
    num_kv_heads, kv_len, _ = prefill_k.shape
    group_size = num_q_heads // num_kv_heads
    scale = scale if scale is not None else 1.0 / math.sqrt(head_dim)
    query_offset = kv_len - q_len

    prefill_items = _prefill_work_items(num_q_heads, q_len, tile_q)
    decode_items = [
        FusedWorkItem(op="decode", head=head, index=request_idx)
        for request_idx in range(len(decodes))
        for head in range(decodes[request_idx].q.shape[0])
    ]
    policy = policy or ProportionalPolicy()
    scheduler = SMAwareScheduler(
        num_sms=num_sms,
        num_prefill_ctas=len(prefill_items),
        num_decode_ctas=max(1, len(decode_items)) if decode_items else 0,
        policy=policy,
    ) if decode_items else None

    # Bind work items in dispatch order (round-robin over simulated SMs), so the
    # execution order interleaves prefill and decode exactly as the kernel would.
    schedule: list[FusedWorkItem] = []
    if scheduler is None:
        schedule = list(prefill_items)
    else:
        for dispatch in range(len(prefill_items) + len(decode_items)):
            assignment = scheduler.assign(dispatch % num_sms)
            if assignment.op == PREFILL:
                schedule.append(prefill_items[assignment.cta_id])
            else:
                schedule.append(decode_items[assignment.cta_id])

    prefill_output = np.zeros_like(prefill_q, dtype=np.float64)
    decode_outputs = [np.zeros_like(seq.q, dtype=np.float64) for seq in decodes]

    for item in schedule:
        if item.op == "prefill":
            head = item.head
            kv_head = head // group_size
            q_start = item.index * tile_q
            q_end = min(q_len, q_start + tile_q)
            rows = q_end - q_start
            row_positions = np.arange(q_start, q_end) + query_offset
            state = OnlineSoftmaxState.empty(rows, head_dim)
            q_tile = prefill_q[head, q_start:q_end].astype(np.float64)
            for kv_start in range(0, kv_len, tile_kv):
                if kv_start > row_positions[-1]:
                    break
                kv_end = min(kv_len, kv_start + tile_kv)
                k_tile = prefill_k[kv_head, kv_start:kv_end].astype(np.float64)
                v_tile = prefill_v[kv_head, kv_start:kv_end].astype(np.float64)
                scores = (q_tile @ k_tile.T) * scale
                kv_positions = np.arange(kv_start, kv_end)
                mask = kv_positions[None, :] <= row_positions[:, None]
                scores = np.where(mask, scores, -np.inf)
                state.update(scores, v_tile)
            prefill_output[head, q_start:q_end] = state.finalize()
        else:
            seq = decodes[item.index]
            head = item.head
            seq_group = seq.q.shape[0] // seq.k.shape[0]
            kv_head = head // seq_group
            seq_kv_len = seq.k.shape[1]
            state = OnlineSoftmaxState.empty(seq.q.shape[1], head_dim)
            q_tile = seq.q[head].astype(np.float64)
            for kv_start in range(0, seq_kv_len, tile_kv):
                kv_end = min(seq_kv_len, kv_start + tile_kv)
                k_tile = seq.k[kv_head, kv_start:kv_end].astype(np.float64)
                v_tile = seq.v[kv_head, kv_start:kv_end].astype(np.float64)
                scores = (q_tile @ k_tile.T) * scale
                state.update(scores, v_tile)
            decode_outputs[item.index][head] = state.finalize()

    return FusedNumericResult(
        prefill_output=prefill_output, decode_outputs=decode_outputs, schedule=schedule
    )


def fused_reference(
    prefill_q: np.ndarray,
    prefill_k: np.ndarray,
    prefill_v: np.ndarray,
    decodes: list[DecodeSequence],
    scale: float | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Dense reference for the fused computation (prefill output, decode outputs)."""
    prefill_out = attention_reference(prefill_q, prefill_k, prefill_v, causal=True, scale=scale)
    decode_outs = [decode_reference(seq.q, seq.k, seq.v, scale=scale) for seq in decodes]
    return prefill_out, decode_outs
