"""Naive CTA-parallel fusion (the §3 strawman POD-Attention improves upon).

Like POD-Attention, this strategy fuses prefill and decode tile work into a
single kernel along the CTA dimension — but the operation each CTA executes is
fixed by its CTA id at launch time (either all prefill CTAs first, or globally
interleaved), with no knowledge of which SM the CTA lands on.  Co-location of
prefill and decode on every SM is therefore *not guaranteed*, which is why the
paper's Figure 7 case study finds plain CTA-parallel fusion only marginally
better than serial execution.
"""

from __future__ import annotations

from repro.attention.cost_model import AttentionCostParams, batch_decode_ctas, batch_prefill_ctas
from repro.attention.executors import AttentionExecutor
from repro.attention.kernels import fa_decode_kernel, fa_prefill_kernel
from repro.attention.workload import HybridBatch
from repro.core.pod_kernel import group_virtual_decode_ctas
from repro.core.tile_config import PODConfig, select_pod_config
from repro.gpu.cta import CTAWork
from repro.gpu.kernel import Kernel, KernelLaunch
from repro.models.config import Deployment
from repro.utils.validation import check_in_choices

CTA_ORDERINGS = ("blocked", "interleaved")


def static_cta_order(
    prefill_works: list[CTAWork], decode_works: list[CTAWork], ordering: str
) -> list[CTAWork]:
    """Fix the CTA-id → operation mapping at launch time.

    ``blocked`` places all prefill CTAs before all decode CTAs (the natural
    layout of a fused grid); ``interleaved`` spreads them in proportion, which
    helps the initial wave but still cannot adapt to runtime placement.
    """
    check_in_choices("ordering", ordering, CTA_ORDERINGS)
    if ordering == "blocked":
        return prefill_works + decode_works
    total = len(prefill_works) + len(decode_works)
    if total == 0:
        return []
    ordered: list[CTAWork] = []
    p_idx = d_idx = 0
    for slot in range(total):
        # Interleave so that prefill CTAs are spread evenly across the id space.
        target_prefill = round((slot + 1) * len(prefill_works) / total)
        if p_idx < target_prefill and p_idx < len(prefill_works):
            ordered.append(prefill_works[p_idx])
            p_idx += 1
        elif d_idx < len(decode_works):
            ordered.append(decode_works[d_idx])
            d_idx += 1
        else:
            ordered.append(prefill_works[p_idx])
            p_idx += 1
    return ordered


class NaiveCTAFusion(AttentionExecutor):
    """CTA-parallel fusion with static (launch-time) operation binding."""

    name = "CTA_Fusion"

    def __init__(
        self,
        params: AttentionCostParams | None = None,
        config: PODConfig | None = None,
        ordering: str = "blocked",
    ) -> None:
        super().__init__(params)
        check_in_choices("ordering", ordering, CTA_ORDERINGS)
        self.config = config
        self.ordering = ordering
        self.name = f"CTA_Fusion[{ordering}]"

    def build_launches(self, deployment: Deployment, batch: HybridBatch) -> list[KernelLaunch]:
        if not batch.is_hybrid:
            kernel = (
                fa_prefill_kernel(deployment, batch, self.params)
                if batch.has_prefill
                else fa_decode_kernel(deployment, batch, self.params)
            )
            return [KernelLaunch(kernel=kernel, stream=0)] if kernel else []
        config = self.config or select_pod_config(deployment, batch)
        prefill_works = batch_prefill_ctas(
            deployment,
            batch,
            tile=config.prefill_tile,
            params=self.params,
            max_prefill_ctas=config.max_prefill_ctas(deployment.gpu),
        )
        decode_units = batch_decode_ctas(
            deployment, batch, tile=config.decode_tile, params=self.params
        )
        decode_works = group_virtual_decode_ctas(decode_units, config.virtual_decode_factor)
        ordered = static_cta_order(prefill_works, decode_works, self.ordering)
        kernel = Kernel.from_ctas(
            name=f"CTA_fusion_{self.ordering}",
            ctas=ordered,
            threads_per_cta=config.profile.threads_per_cta,
            shared_mem_per_cta=config.profile.shared_mem_bytes,
            registers_per_thread=config.profile.registers_per_thread,
            meta={"ordering": self.ordering},
        )
        return [KernelLaunch(kernel=kernel, stream=0)]
