"""SM-aware CTA scheduling: runtime operation binding (paper §4.1, Figure 9).

This is a line-for-line Python port of the CUDA scheduling snippet in
Figure 9 of the paper.  Each CTA, after the hardware has placed it on an SM,
uses three atomic counters to decide whether it will execute prefill or
decode work:

* ``sm_ctr[sm_id]`` — how many CTAs have been scheduled on this SM so far;
  its value modulo the policy period yields a *ticket* that selects the
  preferred operation for this slot;
* ``cta_assign[PREFILL]`` / ``cta_assign[DECODE]`` — global counters handing
  out the next prefill / decode CTA id; when the preferred operation has no
  CTAs left, the CTA switches to the other operation.

Because the decision happens *after* SM placement, co-location of prefill and
decode on every SM is guaranteed regardless of how the hardware scheduler
distributes CTAs — the property that streams and naive CTA-parallel fusion
cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduling_policy import FiftyFiftyPolicy, SchedulingPolicy
from repro.gpu.atomics import AtomicCounter, AtomicCounterArray
from repro.gpu.cta import DECODE_TAG, PREFILL_TAG

PREFILL = PREFILL_TAG
DECODE = DECODE_TAG


@dataclass
class Assignment:
    """The binding decision made by one CTA."""

    op: str
    cta_id: int
    sm_id: int
    ticket: int


@dataclass
class SMAwareScheduler:
    """Runtime operation binding for a fused prefill/decode kernel launch.

    Args:
        num_sms: Number of SMs of the target GPU (length of the ticket array).
        num_prefill_ctas: Prefill CTAs required by this launch.
        num_decode_ctas: Decode CTAs required by this launch.
        policy: Scheduling policy deciding the per-SM interleaving ratio.
    """

    num_sms: int
    num_prefill_ctas: int
    num_decode_ctas: int
    policy: SchedulingPolicy = field(default_factory=FiftyFiftyPolicy)

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be > 0")
        if self.num_prefill_ctas < 0 or self.num_decode_ctas < 0:
            raise ValueError("CTA counts must be >= 0")
        if self.num_prefill_ctas + self.num_decode_ctas == 0:
            raise ValueError("the fused launch must contain at least one CTA")
        self.prefill_ratio, self.decode_ratio = self.policy.ratio(
            self.num_prefill_ctas, self.num_decode_ctas
        )
        self.sm_ctr = AtomicCounterArray(self.num_sms)
        self.cta_assign = {PREFILL: AtomicCounter(), DECODE: AtomicCounter()}
        self.assignments: list[Assignment] = []

    @property
    def total_ctas(self) -> int:
        return self.num_prefill_ctas + self.num_decode_ctas

    def _limit(self, op: str) -> int:
        return self.num_prefill_ctas if op == PREFILL else self.num_decode_ctas

    def assign(self, sm_id: int) -> Assignment:
        """Bind the next CTA dispatched onto ``sm_id`` to an operation and CTA id.

        Mirrors Figure 9: ticket from the per-SM counter selects the preferred
        operation, the global per-operation counter hands out the CTA id, and
        the CTA switches operations if its preferred one is exhausted.
        """
        if not 0 <= sm_id < self.num_sms:
            raise ValueError(f"sm_id {sm_id} out of range [0, {self.num_sms})")
        if len(self.assignments) >= self.total_ctas:
            raise RuntimeError("more CTAs dispatched than the launch contains")

        ratio = self.prefill_ratio + self.decode_ratio
        ticket = self.sm_ctr.atomic_add(sm_id, 1) % ratio
        op = PREFILL if ticket < self.prefill_ratio else DECODE
        cta_id = self.cta_assign[op].atomic_add(1)

        # If this operation ran out of CTAs, switch to the other one.
        if op == PREFILL and cta_id >= self.num_prefill_ctas:
            op = DECODE
            cta_id = self.cta_assign[op].atomic_add(1)
        elif op == DECODE and cta_id >= self.num_decode_ctas:
            op = PREFILL
            cta_id = self.cta_assign[op].atomic_add(1)

        if cta_id >= self._limit(op):
            raise RuntimeError(
                "SM-aware scheduler over-assigned CTAs: "
                f"op={op}, cta_id={cta_id}, limit={self._limit(op)}"
            )
        assignment = Assignment(op=op, cta_id=cta_id, sm_id=sm_id, ticket=ticket)
        self.assignments.append(assignment)
        return assignment

    # ------------------------------------------------------------ reporting

    def per_sm_mix(self) -> dict[int, dict[str, int]]:
        """How many prefill/decode CTAs each SM received (for co-location analysis)."""
        mix: dict[int, dict[str, int]] = {}
        for assignment in self.assignments:
            entry = mix.setdefault(assignment.sm_id, {PREFILL: 0, DECODE: 0})
            entry[assignment.op] += 1
        return mix

    def colocation_fraction(self) -> float:
        """Fraction of SMs that executed both operations (1.0 = full co-location)."""
        mix = self.per_sm_mix()
        if not mix:
            return 0.0
        both = sum(1 for entry in mix.values() if entry[PREFILL] > 0 and entry[DECODE] > 0)
        return both / len(mix)

    def reset(self) -> None:
        """Reset all counters (reusing the scheduler for another launch)."""
        self.sm_ctr.reset()
        self.cta_assign[PREFILL].reset()
        self.cta_assign[DECODE].reset()
        self.assignments.clear()
