"""POD-Attention: fused prefill/decode attention with SM-aware CTA scheduling."""

from repro.core.fused_numeric import (
    DecodeSequence,
    FusedNumericResult,
    fused_reference,
    pod_fused_attention_numeric,
)
from repro.core.naive_fusion import CTA_ORDERINGS, NaiveCTAFusion, static_cta_order
from repro.core.pod_kernel import (
    PODAttention,
    PODKernelPlan,
    build_pod_kernel,
    group_virtual_decode_ctas,
)
from repro.core.scheduling_policy import (
    FiftyFiftyPolicy,
    POLICIES,
    ProportionalPolicy,
    SchedulingPolicy,
    get_policy,
)
from repro.core.sm_aware import Assignment, DECODE, PREFILL, SMAwareScheduler
from repro.core.tile_config import (
    PODConfig,
    POD_CONFIGS,
    estimate_phase_costs,
    pod_config_2_ctas_per_sm,
    pod_config_4_ctas_per_sm,
    pod_config_8_ctas_per_sm,
    select_pod_config,
)

__all__ = [
    "DecodeSequence",
    "FusedNumericResult",
    "fused_reference",
    "pod_fused_attention_numeric",
    "CTA_ORDERINGS",
    "NaiveCTAFusion",
    "static_cta_order",
    "PODAttention",
    "PODKernelPlan",
    "build_pod_kernel",
    "group_virtual_decode_ctas",
    "FiftyFiftyPolicy",
    "POLICIES",
    "ProportionalPolicy",
    "SchedulingPolicy",
    "get_policy",
    "Assignment",
    "DECODE",
    "PREFILL",
    "SMAwareScheduler",
    "PODConfig",
    "POD_CONFIGS",
    "estimate_phase_costs",
    "pod_config_2_ctas_per_sm",
    "pod_config_4_ctas_per_sm",
    "pod_config_8_ctas_per_sm",
    "select_pod_config",
]
