"""POD-Attention kernel configurations (paper §4.2).

POD-Attention hand-tunes the per-CTA footprint of the fused kernel so that
multiple CTAs — a mix of prefill and decode — can be resident on every SM:

* the **2 CTAs/SM** configuration keeps the large 128-row prefill tile
  (best for prefill-dominant batches, which want maximum tensor-core
  efficiency and shared memory per CTA);
* the **4 CTAs/SM** configuration shrinks tiles and thread counts so that
  more CTAs fit per SM, allowing finer-grained prefill:decode mixes
  (best for decode-dominant batches);
* decode tiles are shrunk to 16 query rows in both configurations, the
  minimum CUTLASS tile, removing the redundant compute that would otherwise
  steal tensor cores from co-located prefill (§4.2.1);
* decode CTAs are further divided into *virtual CTAs* of one warp each so
  that decode does not over-allocate shared memory (§4.2.3);
* prefill KV splits are limited to two full waves (§4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attention.cost_model import MIN_DECODE_TILE_Q, ResourceProfile, TileShape
from repro.attention.workload import HybridBatch
from repro.gpu.config import GPUSpec
from repro.models.config import Deployment
from repro.utils.units import KB
from repro.utils.validation import check_in_choices, check_positive


@dataclass(frozen=True)
class PODConfig:
    """One POD-Attention kernel configuration."""

    ctas_per_sm: int
    prefill_tile: TileShape
    decode_tile: TileShape
    profile: ResourceProfile
    virtual_decode_factor: int = 4
    prefill_split_wave_limit: float = 2.0

    def __post_init__(self) -> None:
        check_in_choices("ctas_per_sm", self.ctas_per_sm, (2, 4, 8))
        check_positive("virtual_decode_factor", self.virtual_decode_factor)
        check_positive("prefill_split_wave_limit", self.prefill_split_wave_limit)
        if self.decode_tile.tile_q < MIN_DECODE_TILE_Q:
            raise ValueError(
                f"decode tile_q must be >= {MIN_DECODE_TILE_Q} (CUTLASS minimum), "
                f"got {self.decode_tile.tile_q}"
            )

    def max_prefill_ctas(self, spec: GPUSpec) -> int:
        """Limit on prefill CTAs implied by the limited-splits optimization (§4.2.4)."""
        return int(self.prefill_split_wave_limit * spec.num_sms)

    @property
    def name(self) -> str:
        return f"pod-{self.ctas_per_sm}cta"


def pod_config_2_ctas_per_sm() -> PODConfig:
    """2 CTAs/SM: large prefill tiles, for prefill-dominant hybrid batches."""
    return PODConfig(
        ctas_per_sm=2,
        prefill_tile=TileShape(tile_q=128, tile_kv=64),
        decode_tile=TileShape(tile_q=16, tile_kv=64),
        profile=ResourceProfile(
            threads_per_cta=256, shared_mem_bytes=80 * KB, registers_per_thread=128
        ),
        virtual_decode_factor=4,
    )


def pod_config_4_ctas_per_sm() -> PODConfig:
    """4 CTAs/SM: smaller tiles, finer prefill:decode mixing for decode-heavy batches."""
    return PODConfig(
        ctas_per_sm=4,
        prefill_tile=TileShape(tile_q=64, tile_kv=32),
        decode_tile=TileShape(tile_q=16, tile_kv=32),
        profile=ResourceProfile(
            threads_per_cta=128, shared_mem_bytes=40 * KB, registers_per_thread=120
        ),
        virtual_decode_factor=4,
    )


def pod_config_8_ctas_per_sm() -> PODConfig:
    """8 CTAs/SM: explored in the paper and found rarely beneficial; kept for ablations."""
    return PODConfig(
        ctas_per_sm=8,
        prefill_tile=TileShape(tile_q=32, tile_kv=32),
        decode_tile=TileShape(tile_q=16, tile_kv=32),
        profile=ResourceProfile(
            threads_per_cta=128, shared_mem_bytes=20 * KB, registers_per_thread=64
        ),
        virtual_decode_factor=2,
    )


POD_CONFIGS = {
    2: pod_config_2_ctas_per_sm,
    4: pod_config_4_ctas_per_sm,
    8: pod_config_8_ctas_per_sm,
}


def estimate_phase_costs(deployment: Deployment, batch: HybridBatch) -> tuple[float, float]:
    """Rough (prefill compute seconds, decode memory seconds) estimate for a batch.

    Used only to pick between the 2- and 4-CTAs/SM configurations, mirroring
    the runtime heuristic the paper describes in §4.2.2/§5.4.1.
    """
    model = deployment.model
    spec = deployment.gpu
    prefill_flops = 0.0
    for chunk in batch.prefills:
        # Average causal extent of the chunk's queries.
        avg_kv = chunk.prior_tokens + chunk.chunk_tokens / 2.0
        prefill_flops += (
            4.0 * chunk.chunk_tokens * avg_kv * model.head_dim * deployment.q_heads_per_gpu
        )
    decode_bytes = 0.0
    for decode in batch.decodes:
        decode_bytes += (
            decode.context_tokens
            * model.head_dim
            * 2
            * model.dtype_bytes
            * deployment.kv_heads_per_gpu
        )
    prefill_time = prefill_flops / spec.tensor_flops
    decode_time = decode_bytes / spec.hbm_bandwidth
    return prefill_time, decode_time


def select_pod_config(deployment: Deployment, batch: HybridBatch) -> PODConfig:
    """Pick the POD configuration at runtime, as POD-Attention does (§4.2.2).

    Prefill-dominant batches use 2 CTAs/SM (larger tiles); otherwise 4 CTAs/SM
    (finer co-scheduling granularity).
    """
    prefill_time, decode_time = estimate_phase_costs(deployment, batch)
    if prefill_time >= decode_time:
        return pod_config_2_ctas_per_sm()
    return pod_config_4_ctas_per_sm()
