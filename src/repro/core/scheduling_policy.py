"""CTA scheduling policies for SM-aware scheduling (paper §4.1, §5.4.2).

A policy decides, for each SM, in what proportion successive CTAs landing on
that SM bind to prefill versus decode work.  The paper evaluates two:

* **50:50** — CTAs on an SM alternate prefill, decode, prefill, decode, …
  regardless of how much work each operation has.
* **Proportional** — CTAs bind in the ratio of the total prefill and decode
  CTA counts of the batch, spreading the rarer operation evenly across SMs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class SchedulingPolicy(ABC):
    """Decides the per-SM prefill:decode interleaving ratio."""

    name: str = "base"

    @abstractmethod
    def ratio(self, num_prefill_ctas: int, num_decode_ctas: int) -> tuple[int, int]:
        """Return ``(prefill_ratio, decode_ratio)`` as small positive integers."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FiftyFiftyPolicy(SchedulingPolicy):
    """Alternate prefill and decode CTAs on every SM (1:1)."""

    name = "50:50"

    def ratio(self, num_prefill_ctas: int, num_decode_ctas: int) -> tuple[int, int]:
        if num_prefill_ctas == 0:
            return (0, 1)
        if num_decode_ctas == 0:
            return (1, 0)
        return (1, 1)


class ProportionalPolicy(SchedulingPolicy):
    """Bind CTAs in proportion to the batch's prefill and decode CTA counts.

    The ratio is reduced by the greatest common divisor and capped so the
    repeat period stays small (e.g. 50 prefill and 100 decode CTAs → 1:2).
    A small period matters: the Figure-9 ticket mapping runs the first
    ``prefill_ratio`` CTAs of each period as prefill, so a long period would
    front-load one operation and delay the other on every SM.
    """

    name = "proportional"

    def __init__(self, max_period: int = 4) -> None:
        if max_period < 2:
            raise ValueError(f"max_period must be >= 2, got {max_period}")
        self.max_period = max_period

    def ratio(self, num_prefill_ctas: int, num_decode_ctas: int) -> tuple[int, int]:
        if num_prefill_ctas == 0:
            return (0, 1)
        if num_decode_ctas == 0:
            return (1, 0)
        divisor = math.gcd(num_prefill_ctas, num_decode_ctas)
        prefill_ratio = num_prefill_ctas // divisor
        decode_ratio = num_decode_ctas // divisor
        period = prefill_ratio + decode_ratio
        if period > self.max_period:
            # Rescale to a small period while preserving the proportion as
            # closely as possible (each side gets at least one slot).
            scale = self.max_period / period
            prefill_ratio = max(1, round(prefill_ratio * scale))
            decode_ratio = max(1, self.max_period - prefill_ratio)
        return (prefill_ratio, decode_ratio)


POLICIES = {
    "50:50": FiftyFiftyPolicy,
    "proportional": ProportionalPolicy,
}


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name (``"50:50"`` or ``"proportional"``)."""
    if name not in POLICIES:
        raise ValueError(f"unknown policy {name!r}; choose from {sorted(POLICIES)}")
    return POLICIES[name]()
