"""POD-Attention reproduction library.

A pure-Python reproduction of *POD-Attention: Unlocking Full Prefill-Decode
Overlap for Faster LLM Inference* (ASPLOS 2025) on a simulated GPU substrate.
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.

Public API highlights:

* :mod:`repro.gpu` — the simulated GPU (SMs, CTAs, streams, occupancy, energy).
* :mod:`repro.attention` — hybrid-batch workloads, exact tiled attention
  numerics, and the FlashAttention/FlashInfer/HFuse baseline strategies.
* :mod:`repro.core` — POD-Attention itself: SM-aware CTA scheduling, tile
  configurations, virtual decode CTAs, split limiting, the fused kernel.
* :mod:`repro.models` / :mod:`repro.serving` — the LLM serving stack
  (vLLM and Sarathi-Serve schedulers, KV cache, engine, workload traces).
* :mod:`repro.fusion` — the §3 concurrent-execution case study.
* :mod:`repro.cluster` / :mod:`repro.planner` — multi-replica fleets
  (homogeneous or heterogeneous ``ReplicaSpec`` mixes), routing, serving
  economics, and the SLO/cost capacity planner.
* :mod:`repro.cli` — the ``repro`` operator CLI (``python -m repro``).
"""

from repro.attention.workload import DecodeRequest, HybridBatch, PrefillChunk, table1_configs
from repro.attention.executors import FAHFuse, FASerial, FAStreams, FIBatched, FISerial
from repro.attention.metrics import AttentionRunResult, theoretical_minimum_time
from repro.core.pod_kernel import PODAttention, build_pod_kernel
from repro.core.sm_aware import SMAwareScheduler
from repro.core.tile_config import PODConfig, select_pod_config
from repro.cluster.simulator import ClusterSimulator
from repro.gpu.config import GPUSpec, a100_sxm_80gb, get_gpu
from repro.gpu.engine import ExecutionEngine
from repro.models.config import (
    ClusterSpec,
    Deployment,
    ModelConfig,
    ReplicaSpec,
    get_model,
    paper_deployment,
    replica_specs_from_mix,
)
from repro.planner import PlanCandidate, PlannerConfig, PlanResult, capacity_plan
from repro.serving.scheduler_sarathi import SarathiScheduler
from repro.serving.scheduler_vllm import VLLMScheduler
from repro.serving.simulator import ServingSimulator
from repro.workloads.scenario import SCENARIOS, build_scenario, run_scenario

__version__ = "1.0.0"

__all__ = [
    "DecodeRequest",
    "HybridBatch",
    "PrefillChunk",
    "table1_configs",
    "FAHFuse",
    "FASerial",
    "FAStreams",
    "FIBatched",
    "FISerial",
    "AttentionRunResult",
    "theoretical_minimum_time",
    "PODAttention",
    "build_pod_kernel",
    "SMAwareScheduler",
    "PODConfig",
    "select_pod_config",
    "GPUSpec",
    "a100_sxm_80gb",
    "get_gpu",
    "ExecutionEngine",
    "Deployment",
    "ModelConfig",
    "get_model",
    "paper_deployment",
    "SarathiScheduler",
    "VLLMScheduler",
    "ServingSimulator",
    # Fleets, economics and capacity planning
    "ClusterSimulator",
    "ClusterSpec",
    "ReplicaSpec",
    "replica_specs_from_mix",
    "PlannerConfig",
    "PlanCandidate",
    "PlanResult",
    "capacity_plan",
    # Workload scenarios
    "SCENARIOS",
    "build_scenario",
    "run_scenario",
    "__version__",
]
