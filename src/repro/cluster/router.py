"""Router policies: which replica receives each arriving request.

A router sees a load snapshot of every replica in its pool (queued + running
request counts, outstanding prefill/decode token backlogs) and picks one.  The
policies span the classic design space:

* ``round-robin``   — state-oblivious, perfectly fair in request count.
* ``least-requests``— join-shortest-queue (JSQ) by outstanding request count.
* ``least-tokens``  — JSQ by total outstanding tokens, which equalizes *work*
  rather than request count under heavy-tailed context lengths.
* ``prefill-aware`` — balances the outstanding *prefill* token backlog first
  (prompt processing dominates iteration time at POD-relevant context
  lengths), breaking ties on total tokens.
* ``prefix-affinity`` — sends requests tagged with a shared ``prefix_id`` to
  the replica already serving that prefix (so its prefix-cached KV blocks are
  reused), spilling to the least-loaded replica when the sticky target is
  overloaded.  Untagged requests fall back to least-tokens.

Routers are deliberately cheap and deterministic: tie-breaks always favour the
lowest replica index, so simulations are reproducible across runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.serving.request import Request


@dataclass(frozen=True)
class ReplicaLoad:
    """Point-in-time load snapshot of one replica, as seen by a router."""

    replica_id: int
    num_requests: int
    outstanding_tokens: int
    outstanding_prefill_tokens: int

    @property
    def outstanding_decode_tokens(self) -> int:
        return self.outstanding_tokens - self.outstanding_prefill_tokens

    @classmethod
    def zero(cls, replica_id: int) -> "ReplicaLoad":
        """Empty snapshot, for policies that declare ``needs_loads = False``."""
        return cls(
            replica_id=replica_id,
            num_requests=0,
            outstanding_tokens=0,
            outstanding_prefill_tokens=0,
        )


class RouterPolicy(ABC):
    """Chooses a replica (by position in the pool) for each request."""

    name: str = "base"
    #: Whether ``choose`` reads the load fields; when False the caller may
    #: pass zeroed snapshots and skip the per-request backlog scan.
    needs_loads: bool = True

    @abstractmethod
    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        """Return the index *into* ``loads`` of the replica to dispatch to."""

    def reset(self) -> None:
        """Clear any routing state (between runs)."""


class RoundRobinRouter(RouterPolicy):
    """Cycle through the pool regardless of load."""

    name = "round-robin"
    needs_loads = False

    def __init__(self) -> None:
        self._next = 0

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        index = self._next % len(loads)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class LeastOutstandingRequestsRouter(RouterPolicy):
    """Join-shortest-queue by outstanding request count."""

    name = "least-requests"

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        return min(range(len(loads)), key=lambda i: (loads[i].num_requests, i))


class LeastOutstandingTokensRouter(RouterPolicy):
    """Join-shortest-queue by total outstanding (prefill + decode) tokens."""

    name = "least-tokens"

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        return min(range(len(loads)), key=lambda i: (loads[i].outstanding_tokens, i))


class PrefillAwareRouter(RouterPolicy):
    """Balance the prefill-token backlog first, then total tokens.

    Prompt processing is compute-bound and dominates iteration time, so two
    replicas with equal token counts can have very different queueing delays
    if one's backlog is prefill-heavy; this policy targets exactly that skew.
    """

    name = "prefill-aware"

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        return min(
            range(len(loads)),
            key=lambda i: (loads[i].outstanding_prefill_tokens, loads[i].outstanding_tokens, i),
        )


class PrefixAffinityRouter(RouterPolicy):
    """Route shared-prefix requests to the replica holding their prefix.

    The first request of each ``prefix_id`` is placed least-tokens and the
    assignment is remembered; later requests with the same prefix follow it,
    so one replica's prefix cache serves the whole group (the KV-level
    counterpart of session affinity).  Stickiness yields when the assigned
    replica's outstanding-token backlog exceeds ``spill_factor`` times the
    least-loaded replica's plus ``spill_slack_tokens`` — then the prefix is
    *re-homed* to the spill target, trading one round of cache misses for
    load balance.  Requests without a ``prefix_id`` are routed least-tokens.
    """

    name = "prefix-affinity"

    def __init__(self, spill_factor: float = 2.0, spill_slack_tokens: int = 8192) -> None:
        self.spill_factor = spill_factor
        self.spill_slack_tokens = spill_slack_tokens
        self._homes: dict[str, int] = {}

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        fallback = min(range(len(loads)), key=lambda i: (loads[i].outstanding_tokens, i))
        prefix_id = request.prefix_id
        if prefix_id is None:
            return fallback
        home = self._homes.get(prefix_id)
        if home is not None:
            for index, load in enumerate(loads):
                if load.replica_id != home:
                    continue
                limit = (
                    self.spill_slack_tokens
                    + self.spill_factor * loads[fallback].outstanding_tokens
                )
                if load.outstanding_tokens <= limit:
                    return index
                break  # overloaded (or pool changed): re-home below
        self._homes[prefix_id] = loads[fallback].replica_id
        return fallback

    def reset(self) -> None:
        self._homes.clear()


ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRequestsRouter.name: LeastOutstandingRequestsRouter,
    LeastOutstandingTokensRouter.name: LeastOutstandingTokensRouter,
    PrefillAwareRouter.name: PrefillAwareRouter,
    PrefixAffinityRouter.name: PrefixAffinityRouter,
}


def get_router(name: str) -> RouterPolicy:
    """Instantiate a router policy by name."""
    key = name.lower()
    if key not in ROUTERS:
        raise ValueError(f"unknown router {name!r}; choose from {sorted(ROUTERS)}")
    return ROUTERS[key]()
