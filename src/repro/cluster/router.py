"""Router policies: which replica receives each arriving request.

A router sees a load snapshot of every replica in its pool (queued + running
request counts, outstanding prefill/decode token backlogs) and picks one.  The
policies span the classic design space:

* ``round-robin``   — state-oblivious, perfectly fair in request count.
* ``least-requests``— join-shortest-queue (JSQ) by outstanding request count.
* ``least-tokens``  — JSQ by total outstanding tokens, which equalizes *work*
  rather than request count under heavy-tailed context lengths.
* ``prefill-aware`` — balances the outstanding *prefill* token backlog first
  (prompt processing dominates iteration time at POD-relevant context
  lengths), breaking ties on total tokens.
* ``prefix-affinity`` — sends requests tagged with a shared ``prefix_id`` to
  the replica already serving that prefix (so its prefix-cached KV blocks are
  reused), spilling to the least-loaded replica when the sticky target is
  overloaded.  Untagged requests fall back to least-tokens.
* ``cost-aware``    — dollar-denominated placement over heterogeneous fleets:
  scores each replica by the estimated marginal dollars of finishing this
  request there (hourly rate × projected work ÷ a hardware throughput proxy).
  On a uniform-cost fleet it degenerates to least-tokens exactly.

Routers are deliberately cheap and deterministic: tie-breaks always favour the
lowest replica index, so simulations are reproducible across runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.serving.request import Request


@dataclass(frozen=True)
class ReplicaLoad:
    """Point-in-time load snapshot of one replica, as seen by a router.

    ``cost_per_hour`` and ``perf_weight`` describe the replica's *hardware*
    (USD/hour and a relative throughput proxy) for dollar-denominated
    policies; both default to neutral values so load snapshots built without
    economics (``cost_per_hour=0`` → treated as uniform cost) keep every
    pre-existing policy's behaviour unchanged.
    """

    replica_id: int
    num_requests: int
    outstanding_tokens: int
    outstanding_prefill_tokens: int
    cost_per_hour: float = 0.0
    perf_weight: float = 1.0

    @property
    def outstanding_decode_tokens(self) -> int:
        return self.outstanding_tokens - self.outstanding_prefill_tokens

    @classmethod
    def zero(cls, replica_id: int) -> "ReplicaLoad":
        """Empty snapshot, for policies that declare ``needs_loads = False``."""
        return cls(
            replica_id=replica_id,
            num_requests=0,
            outstanding_tokens=0,
            outstanding_prefill_tokens=0,
        )


class RouterPolicy(ABC):
    """Chooses a replica (by position in the pool) for each request."""

    name: str = "base"
    #: Whether ``choose`` reads the load fields; when False the caller may
    #: pass zeroed snapshots and skip the per-request backlog scan.
    needs_loads: bool = True

    @abstractmethod
    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        """Return the index *into* ``loads`` of the replica to dispatch to."""

    def reset(self) -> None:
        """Clear any routing state (between runs)."""


class RoundRobinRouter(RouterPolicy):
    """Cycle through the pool regardless of load."""

    name = "round-robin"
    needs_loads = False

    def __init__(self) -> None:
        self._next = 0

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        index = self._next % len(loads)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class LeastOutstandingRequestsRouter(RouterPolicy):
    """Join-shortest-queue by outstanding request count."""

    name = "least-requests"

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        return min(range(len(loads)), key=lambda i: (loads[i].num_requests, i))


class LeastOutstandingTokensRouter(RouterPolicy):
    """Join-shortest-queue by total outstanding (prefill + decode) tokens."""

    name = "least-tokens"

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        return min(range(len(loads)), key=lambda i: (loads[i].outstanding_tokens, i))


class PrefillAwareRouter(RouterPolicy):
    """Balance the prefill-token backlog first, then total tokens.

    Prompt processing is compute-bound and dominates iteration time, so two
    replicas with equal token counts can have very different queueing delays
    if one's backlog is prefill-heavy; this policy targets exactly that skew.
    """

    name = "prefill-aware"

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        return min(
            range(len(loads)),
            key=lambda i: (loads[i].outstanding_prefill_tokens, loads[i].outstanding_tokens, i),
        )


class PrefixAffinityRouter(RouterPolicy):
    """Route shared-prefix requests to the replica holding their prefix.

    The first request of each ``prefix_id`` is placed least-tokens and the
    assignment is remembered; later requests with the same prefix follow it,
    so one replica's prefix cache serves the whole group (the KV-level
    counterpart of session affinity).  Stickiness yields when the assigned
    replica's outstanding-token backlog exceeds ``spill_factor`` times the
    least-loaded replica's plus ``spill_slack_tokens`` — then the prefix is
    *re-homed* to the spill target, trading one round of cache misses for
    load balance.  Requests without a ``prefix_id`` are routed least-tokens.
    """

    name = "prefix-affinity"

    def __init__(self, spill_factor: float = 2.0, spill_slack_tokens: int = 8192) -> None:
        self.spill_factor = spill_factor
        self.spill_slack_tokens = spill_slack_tokens
        self._homes: dict[str, int] = {}

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        fallback = min(range(len(loads)), key=lambda i: (loads[i].outstanding_tokens, i))
        prefix_id = request.prefix_id
        if prefix_id is None:
            return fallback
        home = self._homes.get(prefix_id)
        if home is not None:
            for index, load in enumerate(loads):
                if load.replica_id != home:
                    continue
                limit = (
                    self.spill_slack_tokens
                    + self.spill_factor * loads[fallback].outstanding_tokens
                )
                if load.outstanding_tokens <= limit:
                    return index
                break  # overloaded (or pool changed): re-home below
        self._homes[prefix_id] = loads[fallback].replica_id
        return fallback

    def reset(self) -> None:
        self._homes.clear()


#: Objectives accepted by :class:`CostAwareRouter`.
COST_OBJECTIVES = ("perf-per-dollar", "usd-per-token")


class CostAwareRouter(RouterPolicy):
    """Dollar-denominated placement for heterogeneous (mixed-rate) fleets.

    Two objectives (see :data:`COST_OBJECTIVES`):

    * ``perf-per-dollar`` (default, load-aware) — score each replica by the
      estimated marginal dollars of finishing this request there:
      ``rate × (1 + backlog + request tokens) ÷ perf_weight``, where
      ``perf_weight`` is the replica's relative throughput proxy.  A fast
      replica absorbs proportionally more work before its dollar-score
      catches a slow one; at *uniform* cost and perf the score ordering is
      exactly the outstanding-token ordering, so the policy degenerates to
      least-tokens (the mixed-generation differential oracle relies on this).
    * ``usd-per-token`` (static-greedy) — rank replicas by their hardware
      $/token (``rate ÷ perf_weight``) and pack the cheapest first, breaking
      ties on outstanding tokens.  Useful to expose the cost floor of a mix;
      ignores queueing, so expect worse tail latency under load.

    Replicas with no cost information (``cost_per_hour == 0``) are treated as
    uniform cost 1.0.  All tie-breaks fall to the lowest pool index.
    """

    name = "cost-aware"

    def __init__(self, objective: str = "perf-per-dollar") -> None:
        if objective not in COST_OBJECTIVES:
            raise ValueError(
                f"unknown cost objective {objective!r}; choose from {list(COST_OBJECTIVES)}"
            )
        self.objective = objective

    @staticmethod
    def _rate(load: ReplicaLoad) -> float:
        return load.cost_per_hour if load.cost_per_hour > 0 else 1.0

    @staticmethod
    def _perf(load: ReplicaLoad) -> float:
        return load.perf_weight if load.perf_weight > 0 else 1.0

    def choose(self, loads: list[ReplicaLoad], request: Request) -> int:
        if not loads:
            raise ValueError("router needs at least one replica")
        if self.objective == "usd-per-token":
            return min(
                range(len(loads)),
                key=lambda i: (
                    self._rate(loads[i]) / self._perf(loads[i]),
                    loads[i].outstanding_tokens,
                    i,
                ),
            )
        # Secondary key: outstanding tokens.  If float rounding ever collapses
        # two scores, the uniform-cost case still orders exactly like
        # least-tokens (the differential oracle pins this).
        projected = 1 + request.total_tokens
        return min(
            range(len(loads)),
            key=lambda i: (
                self._rate(loads[i])
                * (projected + loads[i].outstanding_tokens)
                / self._perf(loads[i]),
                loads[i].outstanding_tokens,
                i,
            ),
        )


ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRequestsRouter.name: LeastOutstandingRequestsRouter,
    LeastOutstandingTokensRouter.name: LeastOutstandingTokensRouter,
    PrefillAwareRouter.name: PrefillAwareRouter,
    PrefixAffinityRouter.name: PrefixAffinityRouter,
    CostAwareRouter.name: CostAwareRouter,
}


def get_router(name: str) -> RouterPolicy:
    """Instantiate a router policy by name."""
    key = name.lower()
    if key not in ROUTERS:
        raise ValueError(f"unknown router {name!r}; choose from {sorted(ROUTERS)}")
    return ROUTERS[key]()
