"""Parallel cluster sweeps: replica-count × router × topology × load grids.

Each grid point is a self-contained, picklable description of one cluster
simulation (model and workload by name, scalar knobs only), so the runner can
fan points across processes with ``concurrent.futures.ProcessPoolExecutor`` —
the parallel-rollout pattern — while staying runnable serially for debugging
(``parallel=False``) or inside environments without fork.

Offered load scales with the fleet: a point at ``qps_per_replica`` and
``num_replicas`` replays ``requests_per_replica * num_replicas`` requests at
``qps_per_replica * num_replicas`` QPS, keeping per-replica pressure constant
so throughput/latency comparisons across cluster sizes are iso-load.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import topology_from_spec
from repro.models.config import ClusterSpec, KVTransferModel, paper_deployment
from repro.serving.request import Request
from repro.serving.trace import WORKLOAD_GENERATORS, get_workload, with_poisson_arrivals
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClusterSweepPoint:
    """One cluster configuration in a sweep (fully picklable)."""

    num_replicas: int
    router: str = "round-robin"
    topology: str = "colocated"
    model: str = "llama-3-8b"
    workload: str = "arxiv"
    qps_per_replica: float = 0.85
    requests_per_replica: int = 24
    chunk_size: int = 1024
    prefill_replicas: int = 0  # disaggregated only; 0 = auto split
    kv_link_bandwidth: float | None = None  # None = KVTransferModel default
    kv_link_latency: float | None = None  # None = KVTransferModel default
    backend: str = "pod"
    seed: int = 0
    #: Route on reference scans cross-checked against the incremental load
    #: counters (slow; meant for debugging and validation sweeps).
    debug_validate_loads: bool = False

    def __post_init__(self) -> None:
        check_positive("num_replicas", self.num_replicas)
        check_positive("qps_per_replica", self.qps_per_replica)
        check_positive("requests_per_replica", self.requests_per_replica)

    @property
    def num_requests(self) -> int:
        return self.num_replicas * self.requests_per_replica

    @property
    def qps(self) -> float:
        return self.qps_per_replica * self.num_replicas

    def label(self) -> str:
        return f"{self.topology}/{self.router}/x{self.num_replicas}@{self.qps:.2f}qps"


def build_point_trace(point: ClusterSweepPoint) -> list[Request]:
    """Build the request trace for one grid point.

    ``point.workload`` is either a legacy generator name (``internal`` /
    ``arxiv``, Poisson arrivals — byte-compatible with earlier sweeps) or any
    scenario from ``repro.workloads.SCENARIOS``, whose own arrival process is
    scaled to the point's fleet-wide QPS.
    """
    if point.workload in WORKLOAD_GENERATORS:
        requests = get_workload(point.workload, num_requests=point.num_requests, seed=point.seed)
        return with_poisson_arrivals(requests, qps=point.qps, seed=point.seed + 1)
    from repro.workloads.scenario import build_scenario

    return build_scenario(
        point.workload, num_requests=point.num_requests, seed=point.seed, qps=point.qps
    )


def run_sweep_point(point: ClusterSweepPoint) -> dict[str, Any]:
    """Simulate one grid point and return a flat result row."""
    deployment = paper_deployment(point.model)
    requests = build_point_trace(point)
    transfer_kwargs = {}
    if point.kv_link_bandwidth is not None:
        transfer_kwargs["bandwidth"] = point.kv_link_bandwidth
    if point.kv_link_latency is not None:
        transfer_kwargs["latency"] = point.kv_link_latency
    spec = ClusterSpec(
        deployment=deployment,
        num_replicas=point.num_replicas,
        topology=point.topology,
        prefill_replicas=point.prefill_replicas,
        transfer=KVTransferModel(**transfer_kwargs),
    )
    topology = topology_from_spec(spec, chunk_size=point.chunk_size, backend=point.backend)
    simulator = ClusterSimulator(
        topology, router=point.router, debug_validate_loads=point.debug_validate_loads
    )
    result = simulator.run(requests)
    row: dict[str, Any] = {
        "model": point.model,
        "workload": point.workload,
        "qps": round(point.qps, 3),
        "requests": point.num_requests,
        "gpus": spec.total_gpus,
    }
    row.update(result.metrics.as_row())
    return row


def run_cluster_sweep(
    points: Sequence[ClusterSweepPoint],
    max_workers: int | None = None,
    parallel: bool = True,
    host_profiler=None,
) -> list[dict[str, Any]]:
    """Run every grid point, fanning across processes when ``parallel``.

    Results come back in input order regardless of completion order.  Serial
    execution is used automatically for trivial grids or ``max_workers=1``.

    ``host_profiler`` (a :class:`repro.obs.profiling.HostProfiler`) is
    started/stopped around the whole sweep when given, so benchmark harnesses
    can record the sweep's wall/CPU/peak-RSS cost; worker-process RSS is
    outside ``RUSAGE_SELF``, so parallel sweeps report the parent only.
    """
    points = list(points)
    if not points:
        return []
    if host_profiler is not None:
        host_profiler.start()
    try:
        if not parallel or max_workers == 1 or len(points) == 1:
            return [run_sweep_point(point) for point in points]
        if max_workers is None:
            max_workers = min(len(points), os.cpu_count() or 2)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(run_sweep_point, points))
    finally:
        if host_profiler is not None:
            host_profiler.stop()
