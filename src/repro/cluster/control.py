"""Elastic control plane: autoscaling, SLO-aware admission control, shedding.

A static fleet sized for the steady state either wastes replicas or falls
over during a surge.  This module adds the two policy layers a production
serving cluster puts in front of its fleet, both **default-off** (a
``ClusterSimulator`` without a ``control=`` argument behaves byte-identically
to one built before this module existed):

* :class:`AutoscalerPolicy` — queue-depth-triggered scaling.  When the mean
  outstanding-request depth per live replica crosses ``scale_up_queue_depth``
  the fleet provisions new replicas, each paying a ``cold_start_s`` delay
  before it may receive traffic; when the depth falls below
  ``scale_down_queue_depth`` the least-loaded replica begins *draining* — it
  receives no new routes, finishes its outstanding work, then leaves the
  fleet.  Decisions are throttled by ``cooldown_s`` to prevent flapping.

* :class:`AdmissionPolicy` — SLO-class-aware admission control and load
  shedding.  Fleet queue pressure is compared against per-tier thresholds
  (lowest tier shed first: batch traffic is rejected at mild pressure,
  standard at heavy pressure, interactive only when the fleet is hard-full),
  on top of per-tenant outstanding-request caps and per-tenant token-bucket
  rate limits.  A shed request is terminal (``RequestState.REJECTED``): it
  never routes, executes no chunk, and counts as an SLO miss in the
  offered-traffic goodput (:func:`repro.serving.metrics.slo_attainment`).

:class:`ControlPlane` bundles the two policies plus their per-run mutable
state (token buckets, per-tenant outstanding counts, cooldown clock).  It is
a *policy* object: the :class:`~repro.cluster.simulator.ClusterSimulator`
owns the fleet sets (live / warming / draining / retired) and executes the
decisions this object returns, so the control plane itself stays trivially
unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.serving.request import Request
from repro.utils.validation import check_positive
from repro.workloads.tenants import SLO_CLASSES

#: Rejection reason strings carried on ``rejected`` events.
SHED_OVERLOAD = "overload"
SHED_TENANT_QUEUE = "tenant_queue_cap"
SHED_RATE_LIMIT = "tenant_rate_limit"

#: Default per-tier shed thresholds, as fractions of fleet queue capacity.
#: Lowest tier first: batch traffic sheds once the fleet is half full,
#: standard at three quarters, interactive only when hard-full.
DEFAULT_SHED_THRESHOLDS: dict[str, float] = {
    "batch": 0.5,
    "standard": 0.75,
    "interactive": 1.0,
}


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Queue-depth-triggered horizontal scaling with cold starts and draining.

    Depth is measured as outstanding requests per *live* replica at arrival
    time (warming and draining replicas are excluded — warming replicas take
    no traffic yet; draining replicas take no new traffic ever).
    """

    min_replicas: int = 1
    max_replicas: int = 8
    #: Scale up when outstanding requests per live replica reach this depth.
    scale_up_queue_depth: float = 8.0
    #: Scale down when the depth falls to this level (and nothing is warming).
    scale_down_queue_depth: float = 1.0
    #: Provisioning delay: a new replica accepts traffic only after this long.
    cold_start_s: float = 5.0
    #: Minimum time between two scaling decisions.
    cooldown_s: float = 10.0
    scale_up_step: int = 1
    scale_down_step: int = 1

    def __post_init__(self) -> None:
        check_positive("min_replicas", self.min_replicas)
        check_positive("max_replicas", self.max_replicas)
        check_positive("scale_up_step", self.scale_up_step)
        check_positive("scale_down_step", self.scale_down_step)
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas {self.max_replicas} < min_replicas {self.min_replicas}"
            )
        if self.cold_start_s < 0 or self.cooldown_s < 0:
            raise ValueError("cold_start_s and cooldown_s must be non-negative")
        if self.scale_down_queue_depth >= self.scale_up_queue_depth:
            raise ValueError(
                "scale_down_queue_depth must be below scale_up_queue_depth "
                f"({self.scale_down_queue_depth} >= {self.scale_up_queue_depth})"
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """SLO-aware admission control: tiered shedding, tenant caps, rate limits.

    Every knob defaults to "off" (``None``); enable only the checks a run
    needs.  ``tenant_tiers`` maps tenant names to SLO-class names from
    :data:`repro.workloads.tenants.SLO_CLASSES`; unmapped tenants use
    ``default_tier``.
    """

    #: Fleet queue capacity per live replica; pressure = outstanding/capacity.
    max_queue_per_replica: int | None = None
    #: Hard cap on one tenant's outstanding (admitted, unfinished) requests.
    tenant_queue_cap: int | None = None
    #: Token-bucket refill rate per tenant (requests/second).
    tenant_rate_limit_qps: float | None = None
    #: Token-bucket burst size (initial and maximum tokens).
    rate_limit_burst: float = 8.0
    #: Tier name → pressure threshold at which that tier is shed.
    shed_thresholds: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SHED_THRESHOLDS)
    )
    #: Tenant name → tier name (keys of ``shed_thresholds``).
    tenant_tiers: Mapping[str, str] = field(default_factory=dict)
    default_tier: str = "standard"

    def __post_init__(self) -> None:
        if self.max_queue_per_replica is not None:
            check_positive("max_queue_per_replica", self.max_queue_per_replica)
        if self.tenant_queue_cap is not None:
            check_positive("tenant_queue_cap", self.tenant_queue_cap)
        if self.tenant_rate_limit_qps is not None:
            check_positive("tenant_rate_limit_qps", self.tenant_rate_limit_qps)
        check_positive("rate_limit_burst", self.rate_limit_burst)
        for tier in self.tenant_tiers.values():
            if tier not in self.shed_thresholds:
                raise ValueError(
                    f"tenant tier {tier!r} has no shed threshold; "
                    f"choose from {sorted(self.shed_thresholds)}"
                )
        if self.default_tier not in self.shed_thresholds:
            raise ValueError(
                f"default_tier {self.default_tier!r} has no shed threshold"
            )

    def tier_of(self, tenant: str | None) -> str:
        return self.tenant_tiers.get(tenant or "default", self.default_tier)


def tiers_from_slos(slos: Mapping[str, "object"]) -> dict[str, str]:
    """Map tenant → tier from a :func:`repro.workloads.tenants.slo_targets` dict.

    Each tenant's tier is its SLO class name when that name is a known tier
    (a key of :data:`SLO_CLASSES`); unknown class names fall back to
    ``"standard"`` so custom SLO classes still shed at the middle threshold.
    """
    tiers: dict[str, str] = {}
    for tenant, slo in slos.items():
        name = getattr(slo, "name", str(slo))
        tiers[tenant] = name if name in SLO_CLASSES else "standard"
    return tiers


@dataclass
class _TokenBucket:
    """Per-tenant request-rate limiter (continuous refill, capped at burst)."""

    rate: float
    burst: float
    tokens: float = 0.0
    last_refill: float = 0.0

    def try_take(self, now: float) -> bool:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ControlPlane:
    """Bundles autoscaling and admission policies with their per-run state.

    Pass one as ``ClusterSimulator(control=...)`` (colocated topologies
    only).  Either policy may be ``None``, enabling the other alone.  The
    simulator calls, in order per external arrival: :meth:`autoscale` (one
    scaling decision, cooldown-throttled), then :meth:`admit`; and
    :meth:`note_release` whenever a replica finishes a request.
    """

    def __init__(
        self,
        autoscaler: AutoscalerPolicy | None = None,
        admission: AdmissionPolicy | None = None,
    ) -> None:
        if autoscaler is None and admission is None:
            raise ValueError(
                "ControlPlane requires an autoscaler and/or an admission policy"
            )
        self.autoscaler = autoscaler
        self.admission = admission
        self.reset()

    def reset(self) -> None:
        """Forget one run's mutable state (buckets, counts, cooldown clock)."""
        self._buckets: dict[str, _TokenBucket] = {}
        self._tenant_outstanding: dict[str, int] = {}
        self._last_scale_time: float | None = None

    # ------------------------------------------------------------ autoscaling

    def autoscale(
        self,
        now: float,
        live_count: int,
        warming_count: int,
        outstanding: int,
    ) -> int:
        """One scaling decision: +k replicas, -k replicas, or 0.

        ``outstanding`` is the fleet-wide outstanding-request count over live
        replicas.  Scale-down is suppressed while any replica is warming
        (booting capacity means recent demand; retiring it would flap).
        """
        policy = self.autoscaler
        if policy is None:
            return 0
        if (
            self._last_scale_time is not None
            and now - self._last_scale_time < policy.cooldown_s
        ):
            return 0
        depth = outstanding / max(live_count, 1)
        provisioned = live_count + warming_count
        if depth >= policy.scale_up_queue_depth and provisioned < policy.max_replicas:
            self._last_scale_time = now
            return min(policy.scale_up_step, policy.max_replicas - provisioned)
        if (
            depth <= policy.scale_down_queue_depth
            and warming_count == 0
            and live_count > policy.min_replicas
        ):
            self._last_scale_time = now
            return -min(policy.scale_down_step, live_count - policy.min_replicas)
        return 0

    # --------------------------------------------------------------- admission

    def admit(
        self,
        request: Request,
        now: float,
        live_count: int,
        outstanding: int,
    ) -> str | None:
        """Admission check: ``None`` to admit, else the rejection reason.

        Checks run cheapest-signal-first: fleet pressure against the
        request's tier threshold, the tenant's outstanding cap, then its
        token bucket (only the final check consumes a token, so a request
        shed for pressure never burns rate budget).  An admitted request
        increments its tenant's outstanding count; the simulator pairs that
        with :meth:`note_release` at completion.
        """
        policy = self.admission
        if policy is None:
            self._tenant_outstanding[request.tenant or "default"] = (
                self._tenant_outstanding.get(request.tenant or "default", 0) + 1
            )
            return None
        tenant = request.tenant or "default"
        if policy.max_queue_per_replica is not None:
            capacity = max(live_count, 1) * policy.max_queue_per_replica
            threshold = policy.shed_thresholds[policy.tier_of(request.tenant)]
            if outstanding >= threshold * capacity:
                return SHED_OVERLOAD
        if (
            policy.tenant_queue_cap is not None
            and self._tenant_outstanding.get(tenant, 0) >= policy.tenant_queue_cap
        ):
            return SHED_TENANT_QUEUE
        if policy.tenant_rate_limit_qps is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = _TokenBucket(
                    rate=policy.tenant_rate_limit_qps,
                    burst=policy.rate_limit_burst,
                    tokens=policy.rate_limit_burst,
                    last_refill=now,
                )
                self._buckets[tenant] = bucket
            if not bucket.try_take(now):
                return SHED_RATE_LIMIT
        self._tenant_outstanding[tenant] = self._tenant_outstanding.get(tenant, 0) + 1
        return None

    def note_release(self, request: Request) -> None:
        """Record that an admitted request left the fleet (finished)."""
        tenant = request.tenant or "default"
        count = self._tenant_outstanding.get(tenant, 0)
        if count > 0:
            self._tenant_outstanding[tenant] = count - 1

    def tier_of(self, tenant: str | None) -> str:
        if self.admission is None:
            return "standard"
        return self.admission.tier_of(tenant)
