"""Cluster simulator: N replica runtimes interleaved under one global clock.

The simulator is an event loop over three event sources — external arrivals,
KV-transfer completions (disaggregated only) and replica iterations — always
advancing whichever is earliest:

1. If the next arrival (or transfer delivery) is due no later than any
   replica's next iteration, it is routed and enqueued first, so routing
   decisions see replica load *as of the arrival time*.
2. Otherwise the replica with the earliest local clock executes one iteration
   via :meth:`ReplicaRuntime.step`; any requests it releases either complete
   (colocated, or decode pool) or spawn a KV transfer to the decode pool
   (disaggregated prefill pool).

Both hot-path decisions are cheap at fleet scale: the earliest replica comes
from a ``(next_ready_time, replica_id)`` heap with lazy invalidation (stale
entries are discarded or refreshed on peek), so each event's replica pick is
O(log R); and routing loads are read from the replicas' incremental counters
— O(1) per replica, O(R) per arrival — rather than rescanning every
outstanding request in the pool.  ``debug_validate_loads=True`` restores the
reference scans and cross-checks them (sampled) against the counters via the
load-accounting invariant.

With one replica and any router this degenerates to exactly the
``ServingSimulator`` loop — the validation test pins that equivalence — which
is what makes cluster-level results trustworthy extrapolations of the
single-replica model (the "validate against ground truth" discipline of
CounterPoint).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.cluster.metrics import ClusterMetrics, compute_cluster_metrics
from repro.cluster.router import ReplicaLoad, RouterPolicy, get_router
from repro.serving.attention_backend import share_estimate_caches
from repro.serving.kv_cache import KVCacheStats
from repro.serving.replica import ReplicaRuntime
from repro.serving.request import Request, RequestState


#: With ``debug_validate_loads``, every Nth load snapshot (plus the first) is
#: cross-checked against the incremental counters.
_LOAD_VALIDATE_EVERY = 64


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation.

    ``requests`` are the simulated copies (the caller's request objects are
    never mutated by :meth:`ClusterSimulator.run`).
    """

    metrics: ClusterMetrics
    requests: list[Request] = field(repr=False, default_factory=list)
    assignments: dict[int, int] = field(repr=False, default_factory=dict)
    decode_assignments: dict[int, int] = field(repr=False, default_factory=dict)
    kv_stats: KVCacheStats = field(repr=False, default_factory=KVCacheStats)

    @property
    def makespan(self) -> float:
        return self.metrics.fleet.makespan

    @property
    def requests_per_minute(self) -> float:
        return self.metrics.fleet.requests_per_minute


class ClusterSimulator:
    """Drives a topology's replica fleet over a shared arrival trace.

    Args:
        topology: A ``ColocatedTopology`` or ``DisaggregatedTopology``.
        router: Policy (name or instance) for external arrivals.
        decode_router: Policy for prefill→decode handoffs in disaggregated
            topologies; defaults to a fresh instance of the same policy.
        keep_iteration_log: Retain per-iteration results on every replica.
        recorder: Optional shared :class:`repro.verify.events.EventRecorder`;
            every replica emits its events onto it (tagged by ``replica_id``)
            and the cluster adds routing / KV-transfer events.  ``None``
            (default) records nothing and costs nothing.  The recorder holds
            the *latest* run's events: ``run()`` clears it on entry, just as
            it rebuilds a used fleet (keep per-run recorders and
            ``merge_events`` to retain multiple streams).
        debug_validate_loads: Route on full outstanding-request scans instead
            of the incremental counters, cross-checking the two (sampled every
            ``_LOAD_VALIDATE_EVERY`` snapshots) and raising on any drift.
            Debug aid only — it reintroduces the quadratic routing cost.
        control: Optional :class:`repro.cluster.control.ControlPlane`
            (colocated topologies only).  Adds autoscaling (replicas join
            after a cold start, leave by draining) and admission control
            (shed requests become ``REJECTED`` instead of routing).  ``None``
            (default) preserves the static-fleet behaviour exactly.
    """

    def __init__(
        self,
        topology,
        router: str | RouterPolicy = "round-robin",
        decode_router: str | RouterPolicy | None = None,
        keep_iteration_log: bool = False,
        recorder=None,
        debug_validate_loads: bool = False,
        control=None,
    ) -> None:
        self.topology = topology
        self.keep_iteration_log = keep_iteration_log
        if control is not None and topology.kind != "colocated":
            raise ValueError(
                "the control plane supports colocated topologies only "
                "(disaggregated pools would need per-pool scaling policies)"
            )
        self.control = control
        if recorder is not None:
            # Lazy import: repro.verify imports this module at package init.
            from repro.verify.events import as_sink

            recorder = as_sink(recorder)
        self.recorder = recorder
        self.debug_validate_loads = debug_validate_loads
        self._load_snapshots = 0
        self.replicas = topology.build_replicas(
            keep_iteration_log=keep_iteration_log, recorder=recorder
        )
        self.router = get_router(router) if isinstance(router, str) else router
        if decode_router is None:
            # Fresh instance of the same policy class, so custom (unregistered)
            # router implementations work and routing state is not shared.
            self.decode_router = type(self.router)()
        else:
            self.decode_router = (
                get_router(decode_router) if isinstance(decode_router, str) else decode_router
            )
        self._prefill_ids = (
            set(topology.entry_indices) if topology.kind == "disaggregated" else set()
        )
        #: replica id → (cost USD/hour, relative throughput proxy), lazily
        #: filled per replica (the fleet can grow mid-run).
        self._economics: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------- loads

    def _replica_economics(self, index: int) -> tuple[float, float]:
        """(USD/hour, perf proxy) of replica ``index``; best-effort.

        Cost comes from the topology's per-replica spec; a fleet whose GPU
        has no price (custom/scaled specs without explicit rates) reads as
        cost 0.0, which every consumer treats as "unpriced/uniform".  The
        perf proxy is the replica's aggregate tensor throughput in PFLOP/s —
        only ratios matter, so any fixed unit works.
        """
        cached = self._economics.get(index)
        if cached is not None:
            return cached
        spec_for = getattr(self.topology, "spec_for", None)
        cost = 0.0
        perf = 1.0
        if spec_for is not None:
            spec = spec_for(index)
            deployment = spec.deployment
            perf = deployment.gpu.tensor_flops * deployment.tensor_parallel / 1e15
            try:
                cost = spec.cost_per_hour
            except ValueError:
                cost = 0.0  # no rate known for this GPU: treat as unpriced
        self._economics[index] = (cost, perf)
        return cost, perf

    def _loads(self, indices: list[int], router: RouterPolicy) -> list[ReplicaLoad]:
        if not router.needs_loads:
            # State-oblivious policies (round-robin) only need the pool size;
            # skip the load snapshot entirely.
            return [ReplicaLoad.zero(index) for index in indices]
        if self.debug_validate_loads:
            return self._scanned_loads(indices)
        loads = []
        for index in indices:
            replica = self.replicas[index]
            cost, perf = self._replica_economics(index)
            loads.append(
                ReplicaLoad(
                    replica_id=index,
                    num_requests=replica.load_num_requests,
                    outstanding_tokens=replica.load_total_tokens,
                    outstanding_prefill_tokens=replica.load_prefill_tokens,
                    cost_per_hour=cost,
                    perf_weight=perf,
                )
            )
        return loads

    def _scanned_loads(self, indices: list[int]) -> list[ReplicaLoad]:
        """Debug path: full outstanding-request scans, cross-checked (sampled)
        against the incremental counters via the load-accounting invariant."""
        self._load_snapshots += 1
        if self._load_snapshots % _LOAD_VALIDATE_EVERY == 1:
            # Local import: repro.verify imports repro.cluster (oracles).
            from repro.verify.invariants import (
                InvariantViolationError,
                check_replica_load_counters,
            )

            violations = check_replica_load_counters(
                self.replicas[index] for index in indices
            )
            if violations:
                raise InvariantViolationError(violations)
        loads = []
        for index in indices:
            num, tokens, prefill_tokens = self.replicas[index].scan_load()
            cost, perf = self._replica_economics(index)
            loads.append(
                ReplicaLoad(
                    replica_id=index,
                    num_requests=num,
                    outstanding_tokens=tokens,
                    outstanding_prefill_tokens=prefill_tokens,
                    cost_per_hour=cost,
                    perf_weight=perf,
                )
            )
        return loads

    # --------------------------------------------------------------- run

    def run(self, requests: list[Request]) -> ClusterResult:
        """Serve ``requests`` across the fleet and return cluster metrics.

        The caller's request objects are never mutated: the simulation runs
        on fresh copies, which the returned :class:`ClusterResult` carries.
        """
        if not requests:
            raise ValueError("run() requires at least one request")
        if self.recorder is not None:
            # The recorder describes one run; stale events from a previous
            # trace would read as duplicate lifecycles to the invariant checker.
            self.recorder.clear()
        if (
            any(replica.steps_executed for replica in self.replicas)
            or len(self.replicas) != self.topology.num_replicas
        ):
            # A used fleet carries clocks/counters from the previous trace
            # (and may have been grown by the autoscaler); rebuild so repeated
            # run() calls start from a clean cluster.
            self.replicas = self.topology.build_replicas(
                keep_iteration_log=self.keep_iteration_log, recorder=self.recorder
            )
        self.router.reset()
        self.decode_router.reset()
        self._load_snapshots = 0
        self._economics.clear()
        requests = [request.fresh_copy() for request in requests]
        arrivals = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        arrival_index = 0
        transfers: list[tuple[float, int, Request]] = []  # (ready_time, seq, request) heap
        transfer_seq = 0
        num_transfers = 0
        total_transfer_time = 0.0
        assignments: dict[int, int] = {}
        decode_assignments: dict[int, int] = {}
        entry_indices = self.topology.entry_indices
        decode_indices = self.topology.decode_indices
        disaggregated = self.topology.kind == "disaggregated"

        # Control-plane fleet state: replica index sets plus the provisioning
        # ledger replica-seconds are billed from.  Warming replicas have been
        # provisioned but are still cold-starting (no traffic yet); draining
        # replicas take no new routes and retire when their last request
        # finishes.  All of it is inert when ``control`` is None.
        control = self.control
        live: set[int] = set(entry_indices)
        warming: dict[int, float] = {}  # replica index -> cold-start end
        draining: set[int] = set()
        retired: set[int] = set()
        activated_at: dict[int, float] = dict.fromkeys(live, 0.0)
        deactivated_at: dict[int, float] = {}
        num_scale_ups = 0
        num_scale_downs = 0
        peak_replicas = len(live)
        if control is not None:
            control.reset()

        # Ready-time heap over the fleet: each entry is a snapshot of one
        # replica's next_ready_time.  Entries go stale when the replica steps
        # or receives work; they are lazily discarded/refreshed on peek, so
        # picking the next replica is O(log R) instead of a linear scan.
        ready_heap: list[tuple[float, int]] = []

        def push_ready(replica: ReplicaRuntime) -> None:
            ready = replica.next_ready_time()
            if ready is not None:
                heapq.heappush(ready_heap, (ready, replica.replica_id))

        while True:
            next_step_time = None
            next_replica_id = -1
            while ready_heap:
                ready, replica_id = ready_heap[0]
                actual = self.replicas[replica_id].next_ready_time()
                if actual is None:
                    heapq.heappop(ready_heap)  # replica drained since the push
                elif actual != ready:
                    heapq.heapreplace(ready_heap, (actual, replica_id))
                else:
                    next_step_time = ready
                    next_replica_id = replica_id
                    break

            next_arrival = (
                arrivals[arrival_index].arrival_time if arrival_index < len(arrivals) else None
            )
            next_transfer = transfers[0][0] if transfers else None

            # Deliver the earliest due arrival/transfer before stepping any
            # replica, so routers see load as of the event time.
            deliver_arrival = next_arrival is not None and (
                next_transfer is None or next_arrival <= next_transfer
            )
            deliver_time = next_arrival if deliver_arrival else next_transfer
            if deliver_time is not None and (
                next_step_time is None or deliver_time <= next_step_time
            ):
                if deliver_arrival:
                    request = arrivals[arrival_index]
                    arrival_index += 1
                    candidates = entry_indices
                    if control is not None:
                        now = request.arrival_time
                        # Promote warming replicas whose cold start completed.
                        for index in [i for i, at in warming.items() if at <= now]:
                            del warming[index]
                            live.add(index)
                        outstanding = sum(
                            self.replicas[i].load_num_requests for i in live
                        )
                        decision = control.autoscale(
                            now, len(live), len(warming), outstanding
                        )
                        if decision > 0:
                            for _ in range(decision):
                                index = len(self.replicas)
                                self.replicas.append(
                                    self.topology.build_replica(
                                        index,
                                        keep_iteration_log=self.keep_iteration_log,
                                        recorder=self.recorder,
                                    )
                                )
                                ready_at = now + control.autoscaler.cold_start_s
                                if self.recorder is not None:
                                    self.recorder.emit(
                                        "scaled_up",
                                        time=now,
                                        replica_id=index,
                                        ready_at=ready_at,
                                    )
                                activated_at[index] = now
                                num_scale_ups += 1
                                if ready_at <= now:
                                    live.add(index)
                                else:
                                    warming[index] = ready_at
                            # New backends adopt the fleet's warmed memo.
                            share_estimate_caches(
                                replica.backend for replica in self.replicas
                            )
                            peak_replicas = max(
                                peak_replicas, len(live) + len(warming)
                            )
                        elif decision < 0:
                            for _ in range(-decision):
                                victim = min(
                                    live,
                                    key=lambda i: (
                                        self.replicas[i].load_num_requests,
                                        i,
                                    ),
                                )
                                live.remove(victim)
                                num_scale_downs += 1
                                if self.recorder is not None:
                                    self.recorder.emit(
                                        "drain_started",
                                        time=now,
                                        replica_id=victim,
                                    )
                                if self.replicas[victim].is_drained:
                                    # Nothing outstanding: retires on the spot.
                                    retired.add(victim)
                                    end = max(now, self.replicas[victim].clock)
                                    deactivated_at[victim] = end
                                    if self.recorder is not None:
                                        self.recorder.emit(
                                            "scaled_down",
                                            time=end,
                                            replica_id=victim,
                                        )
                                else:
                                    draining.add(victim)
                        reason = control.admit(
                            request, now, len(live), outstanding
                        )
                        if reason is not None:
                            if self.recorder is not None:
                                self.recorder.emit(
                                    "rejected",
                                    time=now,
                                    request_id=request.request_id,
                                    reason=reason,
                                    tenant=request.tenant or "default",
                                    tier=control.tier_of(request.tenant),
                                )
                            request.reject(now)
                            continue
                        candidates = sorted(live)
                    loads = self._loads(candidates, self.router)
                    choice = self.router.choose(loads, request)
                    target = candidates[choice]
                    if self.recorder is not None:
                        self.recorder.emit(
                            "routed",
                            time=request.arrival_time,
                            replica_id=target,
                            request_id=request.request_id,
                            router=self.router.name,
                            load_requests=loads[choice].num_requests,
                            load_tokens=loads[choice].outstanding_tokens,
                            load_prefill_tokens=loads[choice].outstanding_prefill_tokens,
                            cost_per_hour=loads[choice].cost_per_hour,
                        )
                    self.replicas[target].enqueue(request)
                    assignments[request.request_id] = target
                    push_ready(self.replicas[target])
                else:
                    ready_time, _, request = heapq.heappop(transfers)
                    choice = self.decode_router.choose(
                        self._loads(decode_indices, self.decode_router), request
                    )
                    target = decode_indices[choice]
                    if self.recorder is not None:
                        self.recorder.emit(
                            "transfer_delivered",
                            time=ready_time,
                            replica_id=target,
                            request_id=request.request_id,
                        )
                    self.replicas[target].enqueue(request, ready_time=ready_time)
                    decode_assignments[request.request_id] = target
                    push_ready(self.replicas[target])
                continue

            if next_replica_id < 0:
                break  # every queue is drained
            heapq.heappop(ready_heap)  # the entry validated above
            next_replica = self.replicas[next_replica_id]
            outcome = next_replica.step()
            if control is not None:
                for released in outcome.released:
                    control.note_release(released)
                if next_replica_id in draining and next_replica.is_drained:
                    # Connection draining complete: the replica leaves the
                    # fleet at its local clock (its last iteration's end).
                    draining.remove(next_replica_id)
                    retired.add(next_replica_id)
                    deactivated_at[next_replica_id] = next_replica.clock
                    if self.recorder is not None:
                        self.recorder.emit(
                            "scaled_down",
                            time=next_replica.clock,
                            replica_id=next_replica_id,
                        )
            if disaggregated and next_replica.replica_id in self._prefill_ids:
                for request in outcome.released:
                    if request.state == RequestState.FINISHED:
                        continue  # single-token outputs finish in the prefill pool
                    delay = self.topology.transfer.transfer_time(
                        next_replica.deployment, request.context_tokens
                    )
                    num_transfers += 1
                    total_transfer_time += delay
                    transfer_seq += 1
                    if self.recorder is not None:
                        self.recorder.emit(
                            "transfer_start",
                            time=next_replica.clock,
                            replica_id=next_replica.replica_id,
                            request_id=request.request_id,
                            delay=delay,
                            context_tokens=request.context_tokens,
                        )
                    heapq.heappush(
                        transfers, (next_replica.clock + delay, transfer_seq, request)
                    )
            push_ready(next_replica)

        unfinished = [r for r in requests if not r.is_terminal]
        if unfinished:
            raise RuntimeError(
                f"cluster drained with {len(unfinished)} unfinished requests "
                f"(first: {unfinished[0].request_id})"
            )

        makespan = max(replica.clock for replica in self.replicas)
        replica_seconds = None
        replica_active_seconds: dict[int, float] | None = None
        if control is not None:
            # Provisioning cost ledger: every replica is billed from its
            # activation (t=0 for the initial fleet, the scale-up decision for
            # grown replicas — cold starts are paid for) until it retires or,
            # if still serving, the run ends.  The same ledger prices each
            # replica individually for the dollar accounting.
            replica_active_seconds = {
                index: max(0.0, deactivated_at.get(index, makespan) - start)
                for index, start in activated_at.items()
            }
            replica_seconds = sum(replica_active_seconds.values())
        replica_costs = {
            replica.replica_id: self._replica_economics(replica.replica_id)[0]
            for replica in self.replicas
        }
        metrics = compute_cluster_metrics(
            requests,
            self.replicas,
            makespan=makespan,
            topology=self.topology.kind,
            router=self.router.name,
            num_kv_transfers=num_transfers,
            total_kv_transfer_time=total_transfer_time,
            replica_seconds=replica_seconds,
            num_scale_ups=num_scale_ups,
            num_scale_downs=num_scale_downs,
            peak_replicas=peak_replicas if control is not None else None,
            replica_costs=replica_costs,
            replica_active_seconds=replica_active_seconds,
        )
        kv_stats = KVCacheStats()
        for replica in self.replicas:
            kv_stats = kv_stats.merge(replica.kv_cache.stats)
        return ClusterResult(
            metrics=metrics,
            requests=requests,
            assignments=assignments,
            decode_assignments=decode_assignments,
            kv_stats=kv_stats,
        )

    def run_scenario(
        self,
        name: str,
        num_requests: int | None = None,
        seed: int = 0,
        qps: float | None = None,
        overrides=None,
    ) -> ClusterResult:
        """Build a registered workload scenario and serve it across the fleet.

        Thin delegate to :func:`repro.workloads.scenario.run_scenario` (the
        shared entry point) with this simulator's fleet governing; pass
        ``qps`` scaled to the fleet size to keep per-replica pressure
        constant, and ``overrides`` to replace scenario fields before the
        trace is built.
        """
        from repro.workloads.scenario import run_scenario

        return run_scenario(
            name,
            simulator=self,
            num_requests=num_requests,
            seed=seed,
            qps=qps,
            overrides=overrides,
        )
