"""Cluster topologies: colocated hybrid replicas vs disaggregated P/D pools.

A topology knows how to build the fleet of :class:`ReplicaRuntime` objects the
:class:`~repro.cluster.simulator.ClusterSimulator` interleaves, and which
replicas receive external arrivals:

* :class:`ColocatedTopology` — N identical replicas, each running the paper's
  hybrid-batch serving stack (Sarathi scheduling + POD attention by default).
  Every replica is an entry point; a request lives on one replica end-to-end.
* :class:`DisaggregatedTopology` — the prefill/decode-disaggregation
  alternative (Splitwise/DistServe-style): arrivals go to a prefill pool that
  only processes prompts; once a request's first token is out, its KV cache is
  shipped to a decode replica over a modelled link and generation continues
  there.  At equal replica count this trades POD's intra-GPU overlap for
  inter-pool specialization plus a KV-transfer cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.models.config import ClusterSpec, Deployment, KVTransferModel, ReplicaSpec
from repro.serving.attention_backend import (
    AttentionBackend,
    PODBackend,
    get_backend,
    share_estimate_caches,
)
from repro.serving.batch import ScheduledBatch
from repro.serving.kv_cache import KVCacheConfig, KVCacheManager
from repro.serving.replica import ReplicaRuntime
from repro.serving.request import Request
from repro.serving.scheduler import Scheduler, SchedulerLimits
from repro.serving.scheduler_sarathi import SarathiScheduler
from repro.utils.validation import check_positive


class PrefillPoolScheduler(SarathiScheduler):
    """Chunked-prefill scheduler for a prefill-pool replica.

    Identical batching to Sarathi, but reserves KV for the prompt plus one
    token only — the request leaves for the decode pool at first token, so
    reserving its full decode length would waste prefill-pool memory.
    """

    name = "PrefillPool"

    def reserve_tokens(self, request: Request) -> int:
        return request.prefill_tokens + 1


class DecodePoolScheduler(Scheduler):
    """Decode-pool scheduler: admits transferred requests, batches every decode.

    Requests arrive already prefilled (state ``DECODING``) with their KV cache
    shipped in; admission reserves the full final context so the request can
    always grow to completion, then every running request generates one token
    per iteration — there is never prefill work in this pool.
    """

    name = "DecodePool"

    def schedule(
        self,
        waiting: list[Request],
        running: list[Request],
        kv_cache: KVCacheManager,
        now: float,
    ) -> ScheduledBatch:
        batch = ScheduledBatch()
        admissions = 0
        while (
            admissions < len(waiting)
            and admissions < self.limits.max_admissions_per_step
            and len(running) < self.limits.max_batch_size
        ):
            request = waiting[admissions]
            if not kv_cache.can_allocate(request.request_id, request.total_tokens):
                break
            kv_cache.allocate(request.request_id, request.total_tokens)
            running.append(request)
            admissions += 1
        if admissions:
            del waiting[:admissions]
        batch.decode_requests.extend(self.decoding_requests(running)[: self.limits.max_batch_size])
        return batch


@dataclass
class ColocatedTopology:
    """N hybrid replicas behind one router (the POD serving model).

    Homogeneous by default; pass ``replica_specs`` (one
    :class:`~repro.models.config.ReplicaSpec` per replica) for a
    heterogeneous fleet.  ``backend_builder`` builds a backend *for a given
    deployment* and takes precedence over the legacy zero-argument
    ``backend_factory`` (which cannot vary per replica).
    """

    deployment: Deployment
    num_replicas: int
    scheduler_factory: Callable[[], Scheduler] | None = None
    backend_factory: Callable[[], AttentionBackend] | None = None
    kv_config: KVCacheConfig | None = None
    replica_specs: tuple[ReplicaSpec, ...] = ()
    backend_builder: Callable[[Deployment], AttentionBackend] | None = None

    kind = "colocated"

    def __post_init__(self) -> None:
        check_positive("num_replicas", self.num_replicas)
        if self.replica_specs:
            self.replica_specs = tuple(self.replica_specs)
            if len(self.replica_specs) != self.num_replicas:
                raise ValueError(
                    f"replica_specs has {len(self.replica_specs)} entries for "
                    f"num_replicas={self.num_replicas}"
                )

    def spec_for(self, replica_id: int) -> ReplicaSpec:
        """The spec of replica ``replica_id``; autoscaled extras (ids past the
        initial fleet) reuse :meth:`scale_up_spec`."""
        if not self.replica_specs:
            return ReplicaSpec(deployment=self.deployment)
        if replica_id < len(self.replica_specs):
            return self.replica_specs[replica_id]
        return self.scale_up_spec()

    def deployment_for(self, replica_id: int) -> Deployment:
        return self.spec_for(replica_id).deployment

    def scale_up_spec(self) -> ReplicaSpec:
        """The spec a new autoscaled replica uses: the cheapest eligible one.

        The autoscaler provisions marginal capacity, so it picks the lowest
        $/hour spec present in the fleet (ties fall to the lowest replica
        index).  Homogeneous fleets trivially reuse their single spec.
        """
        if not self.replica_specs:
            return ReplicaSpec(deployment=self.deployment)
        return min(self.replica_specs, key=lambda spec: spec.cost_per_hour)

    def _make_backend(self, deployment: Deployment) -> AttentionBackend:
        if self.backend_builder is not None:
            return self.backend_builder(deployment)
        if self.backend_factory is not None:
            return self.backend_factory()
        return PODBackend(deployment)

    def build_replica(
        self, replica_id: int, keep_iteration_log: bool = False, recorder=None
    ) -> ReplicaRuntime:
        """Build one hybrid replica (autoscaler scale-up path).

        The caller is responsible for re-sharing estimate caches across the
        fleet afterwards (``share_estimate_caches``), so a replica added
        mid-run adopts the memo the existing fleet already warmed.
        """
        make_scheduler = self.scheduler_factory or SarathiScheduler
        deployment = self.deployment_for(replica_id)
        return ReplicaRuntime(
            deployment,
            scheduler=make_scheduler(),
            backend=self._make_backend(deployment),
            kv_config=self.kv_config,
            keep_iteration_log=keep_iteration_log,
            replica_id=replica_id,
            role="hybrid",
            recorder=recorder,
        )

    def build_replicas(
        self, keep_iteration_log: bool = False, recorder=None
    ) -> list[ReplicaRuntime]:
        replicas = [
            self.build_replica(
                index, keep_iteration_log=keep_iteration_log, recorder=recorder
            )
            for index in range(self.num_replicas)
        ]
        # Identical replicas compute identical estimates; one shared memo
        # keeps a fleet from re-deriving them once per replica.
        share_estimate_caches(replica.backend for replica in replicas)
        return replicas

    @property
    def entry_indices(self) -> list[int]:
        """Replicas that receive external arrivals (all of them)."""
        return list(range(self.num_replicas))

    @property
    def decode_indices(self) -> list[int]:
        return []


@dataclass
class DisaggregatedTopology:
    """Separate prefill and decode pools joined by a KV-transfer link.

    Heterogeneous fleets assign ``replica_specs`` in fleet order: the first
    ``num_prefill`` specs form the prefill pool, the rest the decode pool
    (matching :attr:`ClusterSpec.resolved_prefill_replicas` semantics).
    """

    deployment: Deployment
    num_prefill: int
    num_decode: int
    chunk_size: int = 1024
    transfer: KVTransferModel = field(default_factory=KVTransferModel)
    backend_factory: Callable[[], AttentionBackend] | None = None
    kv_config: KVCacheConfig | None = None
    limits: SchedulerLimits | None = None
    replica_specs: tuple[ReplicaSpec, ...] = ()
    backend_builder: Callable[[Deployment], AttentionBackend] | None = None

    kind = "disaggregated"

    def __post_init__(self) -> None:
        check_positive("num_prefill", self.num_prefill)
        check_positive("num_decode", self.num_decode)
        check_positive("chunk_size", self.chunk_size)
        if self.replica_specs:
            self.replica_specs = tuple(self.replica_specs)
            if len(self.replica_specs) != self.num_replicas:
                raise ValueError(
                    f"replica_specs has {len(self.replica_specs)} entries for "
                    f"{self.num_replicas} replicas "
                    f"({self.num_prefill} prefill + {self.num_decode} decode)"
                )

    @property
    def num_replicas(self) -> int:
        return self.num_prefill + self.num_decode

    def spec_for(self, replica_id: int) -> ReplicaSpec:
        if not self.replica_specs:
            return ReplicaSpec(deployment=self.deployment)
        return self.replica_specs[replica_id]

    def deployment_for(self, replica_id: int) -> Deployment:
        return self.spec_for(replica_id).deployment

    def _make_backend(self, deployment: Deployment) -> AttentionBackend:
        if self.backend_builder is not None:
            return self.backend_builder(deployment)
        if self.backend_factory is not None:
            return self.backend_factory()
        return PODBackend(deployment)

    def build_replicas(
        self, keep_iteration_log: bool = False, recorder=None
    ) -> list[ReplicaRuntime]:
        replicas = [
            ReplicaRuntime(
                self.deployment_for(index),
                scheduler=PrefillPoolScheduler(chunk_size=self.chunk_size, limits=self.limits),
                backend=self._make_backend(self.deployment_for(index)),
                kv_config=self.kv_config,
                keep_iteration_log=keep_iteration_log,
                release_on="first_token",
                replica_id=index,
                role="prefill",
                recorder=recorder,
            )
            for index in range(self.num_prefill)
        ]
        replicas.extend(
            ReplicaRuntime(
                self.deployment_for(self.num_prefill + index),
                scheduler=DecodePoolScheduler(limits=self.limits),
                backend=self._make_backend(self.deployment_for(self.num_prefill + index)),
                kv_config=self.kv_config,
                keep_iteration_log=keep_iteration_log,
                replica_id=self.num_prefill + index,
                role="decode",
                recorder=recorder,
            )
            for index in range(self.num_decode)
        )
        share_estimate_caches(replica.backend for replica in replicas)
        return replicas

    @property
    def entry_indices(self) -> list[int]:
        """External arrivals land on the prefill pool."""
        return list(range(self.num_prefill))

    @property
    def decode_indices(self) -> list[int]:
        return list(range(self.num_prefill, self.num_prefill + self.num_decode))


def topology_from_spec(
    spec: ClusterSpec,
    chunk_size: int = 1024,
    backend: str = "pod",
    keep_sarathi_chunking: bool = True,
):
    """Build a topology object from a :class:`repro.models.config.ClusterSpec`.

    Heterogeneous specs (``spec.replicas``) thread their per-replica
    deployments through as ``replica_specs``; the topology's ``deployment``
    field then holds the first replica's deployment as a representative (for
    legacy consumers) while each replica is built on its own hardware.
    """
    make_backend = lambda deployment: get_backend(backend, deployment)  # noqa: E731
    replica_specs: tuple[ReplicaSpec, ...] = spec.replicas if spec.replicas else ()
    representative = spec.deployment or spec.resolved_replicas[0].deployment
    if spec.topology == "colocated":
        return ColocatedTopology(
            deployment=representative,
            num_replicas=spec.num_replicas,
            scheduler_factory=(
                (lambda: SarathiScheduler(chunk_size=chunk_size)) if keep_sarathi_chunking else None
            ),
            replica_specs=replica_specs,
            backend_builder=make_backend,
        )
    return DisaggregatedTopology(
        deployment=representative,
        num_prefill=spec.resolved_prefill_replicas,
        num_decode=spec.resolved_decode_replicas,
        chunk_size=chunk_size,
        transfer=spec.transfer,
        replica_specs=replica_specs,
        backend_builder=make_backend,
    )
