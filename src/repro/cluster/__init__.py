"""Cluster-scale serving: multi-replica routing, P/D disaggregation, sweeps.

Builds on the single-replica serving substrate (``repro.serving``): a
:class:`ClusterSimulator` interleaves N :class:`~repro.serving.replica.
ReplicaRuntime` instances under one global clock, router policies spread a
shared arrival trace across them, and topologies choose between colocated
hybrid replicas (the POD-Attention serving model) and disaggregated
prefill/decode pools with an explicit KV-transfer cost.  ``repro.cluster.
sweep`` fans configuration grids across processes.
"""

from repro.cluster.control import (
    AdmissionPolicy,
    AutoscalerPolicy,
    ControlPlane,
    DEFAULT_SHED_THRESHOLDS,
    tiers_from_slos,
)
from repro.cluster.metrics import ClusterMetrics, ReplicaStats, compute_cluster_metrics
from repro.cluster.router import (
    LeastOutstandingRequestsRouter,
    LeastOutstandingTokensRouter,
    PrefillAwareRouter,
    PrefixAffinityRouter,
    ReplicaLoad,
    ROUTERS,
    RoundRobinRouter,
    RouterPolicy,
    get_router,
)
from repro.cluster.simulator import ClusterResult, ClusterSimulator
from repro.cluster.sweep import (
    ClusterSweepPoint,
    build_point_trace,
    run_cluster_sweep,
    run_sweep_point,
)
from repro.cluster.topology import (
    ColocatedTopology,
    DecodePoolScheduler,
    DisaggregatedTopology,
    KVTransferModel,
    PrefillPoolScheduler,
    topology_from_spec,
)

__all__ = [
    "AdmissionPolicy",
    "AutoscalerPolicy",
    "ControlPlane",
    "DEFAULT_SHED_THRESHOLDS",
    "tiers_from_slos",
    "ClusterMetrics",
    "ReplicaStats",
    "compute_cluster_metrics",
    "LeastOutstandingRequestsRouter",
    "LeastOutstandingTokensRouter",
    "PrefillAwareRouter",
    "PrefixAffinityRouter",
    "ReplicaLoad",
    "ROUTERS",
    "RoundRobinRouter",
    "RouterPolicy",
    "get_router",
    "ClusterResult",
    "ClusterSimulator",
    "ClusterSweepPoint",
    "build_point_trace",
    "run_cluster_sweep",
    "run_sweep_point",
    "ColocatedTopology",
    "DecodePoolScheduler",
    "DisaggregatedTopology",
    "KVTransferModel",
    "PrefillPoolScheduler",
    "topology_from_spec",
]
