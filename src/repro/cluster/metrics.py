"""Cluster-level metrics: fleet throughput/latency plus per-replica utilization.

The fleet-level numbers reuse :func:`repro.serving.metrics.compute_metrics`
over every request in the trace with the cluster-wide makespan, so they are
directly comparable with single-replica runs (Tables 5–6).  On top of that,
each replica reports its iteration count, busy time and utilization, and
disaggregated runs report KV-transfer volume — the quantities that show where
a topology or router policy loses its hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.serving.metrics import ServingMetrics, compute_metrics, compute_tenant_metrics
from repro.serving.replica import ReplicaRuntime
from repro.serving.request import Request


@dataclass(frozen=True)
class ReplicaStats:
    """Per-replica accounting of one cluster run.

    The economics fields (``cost_per_hour``, ``active_seconds``,
    ``cost_usd``) default to zero and stay out of :meth:`as_row` so
    pre-existing result artifacts remain byte-identical.
    """

    replica_id: int
    role: str  # "hybrid" | "prefill" | "decode"
    num_iterations: int
    busy_time: float
    utilization: float  # busy_time / cluster makespan
    requests_released: int
    cost_per_hour: float = 0.0
    active_seconds: float = 0.0
    cost_usd: float = 0.0

    def as_row(self) -> dict[str, Any]:
        return {
            "replica": self.replica_id,
            "role": self.role,
            "iterations": self.num_iterations,
            "busy_s": round(self.busy_time, 2),
            "utilization": round(self.utilization, 4),
            "released": self.requests_released,
        }


@dataclass(frozen=True)
class ClusterMetrics:
    """Aggregate metrics of one cluster simulation."""

    fleet: ServingMetrics
    replicas: tuple[ReplicaStats, ...]
    topology: str
    router: str
    num_kv_transfers: int = 0
    total_kv_transfer_time: float = 0.0
    #: Tenant → fleet-level metrics over that tenant's slice of the trace;
    #: empty for untagged (single-tenant) workloads.
    per_tenant: Mapping[str, ServingMetrics] = field(default_factory=dict)
    # Control-plane accounting (defaults describe a static fleet; kept out of
    # as_row() so pre-existing result artifacts stay byte-identical).
    #: Provisioned replica-time: Σ over replicas of (retire − activate), the
    #: cost side of the autoscaling trade-off.  Equals
    #: ``num_replicas * makespan`` for a static fleet.
    replica_seconds: float = 0.0
    num_scale_ups: int = 0
    num_scale_downs: int = 0
    #: Largest concurrently provisioned (live + warming) fleet size.
    peak_replicas: int = 0
    # Serving economics (defaults describe a fleet with no pricing attached;
    # kept out of as_row() so pre-existing result artifacts stay
    # byte-identical — read them via economics_row()).
    #: Dollars billed for the run: Σ over replicas of active-time × rate.
    cost_usd: float = 0.0
    #: Tokens delivered (prefill + decode) by finished requests.
    total_tokens: int = 0
    #: Whole-fleet burn rate while fully provisioned, USD/hour.
    fleet_cost_per_hour: float = 0.0

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def usd_per_1k_tokens(self) -> float:
        """Serving cost per thousand delivered tokens (0 when nothing priced)."""
        if self.total_tokens <= 0:
            return 0.0
        return self.cost_usd / self.total_tokens * 1000.0

    @property
    def mean_utilization(self) -> float:
        return sum(r.utilization for r in self.replicas) / len(self.replicas)

    @property
    def min_utilization(self) -> float:
        return min(r.utilization for r in self.replicas)

    @property
    def max_utilization(self) -> float:
        return max(r.utilization for r in self.replicas)

    @property
    def utilization_imbalance(self) -> float:
        """Max/mean replica utilization (1.0 = perfectly balanced fleet)."""
        mean = self.mean_utilization
        return self.max_utilization / mean if mean > 0 else 0.0

    @property
    def mean_kv_transfer_time(self) -> float:
        if self.num_kv_transfers == 0:
            return 0.0
        return self.total_kv_transfer_time / self.num_kv_transfers

    def as_row(self) -> dict[str, Any]:
        """Flat view for benchmark tables (one row per cluster configuration)."""
        return {
            "topology": self.topology,
            "router": self.router,
            "replicas": self.num_replicas,
            "req_per_min": round(self.fleet.requests_per_minute, 2),
            "ttft_p50_s": round(self.fleet.ttft_p50, 3),
            "ttft_p99_s": round(self.fleet.ttft_p99, 3),
            "tbt_p99_s": round(self.fleet.tbt_p99, 4),
            "latency_p50_s": round(self.fleet.latency_p50, 2),
            "latency_p99_s": round(self.fleet.latency_p99, 2),
            "stalls_200ms_pct": round(self.fleet.stall_fraction_200ms * 100, 2),
            "util_mean": round(self.mean_utilization, 3),
            "util_min": round(self.min_utilization, 3),
            "util_max": round(self.max_utilization, 3),
            "kv_transfers": self.num_kv_transfers,
            "kv_transfer_ms_mean": round(self.mean_kv_transfer_time * 1e3, 2),
        }

    def control_row(self) -> dict[str, Any]:
        """Flat control-plane view: offered vs delivered traffic and fleet cost."""
        offered = self.fleet.num_offered
        return {
            "offered": offered,
            "finished": self.fleet.num_requests,
            "rejected": self.fleet.num_rejected,
            "shed_pct": round(
                self.fleet.num_rejected / offered * 100 if offered else 0.0, 2
            ),
            "replica_seconds": round(self.replica_seconds, 2),
            "peak_replicas": self.peak_replicas,
            "scale_ups": self.num_scale_ups,
            "scale_downs": self.num_scale_downs,
        }

    def economics_row(self) -> dict[str, Any]:
        """Flat dollar-accounting view (fig21 / planner tables)."""
        return {
            "cost_usd": round(self.cost_usd, 6),
            "usd_per_1k_tokens": round(self.usd_per_1k_tokens, 6),
            "fleet_usd_per_hour": round(self.fleet_cost_per_hour, 2),
            "replica_seconds": round(self.replica_seconds, 2),
            "tokens": self.total_tokens,
        }

    def tenant_rows(self) -> list[dict[str, Any]]:
        """One flat row per tenant (empty list for untagged workloads)."""
        return [
            {
                "tenant": tenant,
                "requests": metrics.num_requests,
                "req_per_min": round(metrics.requests_per_minute, 2),
                "ttft_p50_s": round(metrics.ttft_p50, 3),
                "ttft_p99_s": round(metrics.ttft_p99, 3),
                "tbt_p99_s": round(metrics.tbt_p99, 4),
                "latency_p99_s": round(metrics.latency_p99, 2),
                "stalls_200ms_pct": round(metrics.stall_fraction_200ms * 100, 2),
            }
            for tenant, metrics in self.per_tenant.items()
        ]


def compute_cluster_metrics(
    requests: Sequence[Request],
    replicas: Sequence[ReplicaRuntime],
    makespan: float,
    topology: str,
    router: str,
    num_kv_transfers: int = 0,
    total_kv_transfer_time: float = 0.0,
    replica_seconds: float | None = None,
    num_scale_ups: int = 0,
    num_scale_downs: int = 0,
    peak_replicas: int | None = None,
    replica_costs: Mapping[int, float] | None = None,
    replica_active_seconds: Mapping[int, float] | None = None,
) -> ClusterMetrics:
    """Aggregate a cluster run into :class:`ClusterMetrics`.

    ``replica_seconds`` and ``peak_replicas`` default to the static-fleet
    values (``len(replicas) * makespan`` and ``len(replicas)``); the
    simulator passes the control plane's provisioning ledger when one is
    active.  ``replica_costs`` maps replica id → USD/hour; with it set,
    every replica is billed for its active time (``replica_active_seconds``
    when given, else the full makespan) and the fleet totals land in
    ``cost_usd`` / ``usd_per_1k_tokens``.
    """
    fleet = compute_metrics(
        requests,
        makespan=makespan,
        num_iterations=sum(r.engine.total_iterations for r in replicas),
        hybrid_iterations=sum(r.engine.hybrid_iterations for r in replicas),
    )
    costs = replica_costs or {}
    active = replica_active_seconds or {}
    stats_list = []
    for r in replicas:
        rate = costs.get(r.replica_id, 0.0)
        seconds = active.get(r.replica_id, makespan)
        stats_list.append(
            ReplicaStats(
                replica_id=r.replica_id,
                role=r.role,
                num_iterations=r.engine.total_iterations,
                busy_time=r.busy_time,
                utilization=r.busy_time / makespan if makespan > 0 else 0.0,
                requests_released=len(r.released),
                cost_per_hour=rate,
                active_seconds=seconds,
                cost_usd=rate * seconds / 3600.0,
            )
        )
    stats = tuple(stats_list)
    per_tenant: dict[str, ServingMetrics] = {}
    if any(r.tenant for r in requests):
        per_tenant = compute_tenant_metrics(requests, makespan=makespan)
    total_tokens = sum(r.total_tokens for r in requests if r.is_finished)
    return ClusterMetrics(
        fleet=fleet,
        replicas=stats,
        topology=topology,
        router=router,
        num_kv_transfers=num_kv_transfers,
        total_kv_transfer_time=total_kv_transfer_time,
        per_tenant=per_tenant,
        replica_seconds=(
            len(replicas) * makespan if replica_seconds is None else replica_seconds
        ),
        num_scale_ups=num_scale_ups,
        num_scale_downs=num_scale_downs,
        peak_replicas=len(replicas) if peak_replicas is None else peak_replicas,
        cost_usd=sum(stat.cost_usd for stat in stats),
        total_tokens=total_tokens,
        fleet_cost_per_hour=sum(costs.values()),
    )


def goodput_per_dollar(
    requests: Sequence[Request],
    slos: Mapping[str, Any],
    cost_usd: float,
) -> dict[str, dict[str, float]]:
    """Per-SLO-tier goodput-per-dollar for one priced cluster run.

    ``slos`` maps tenant → SLO class (a :func:`repro.workloads.tenants.slo_targets`
    dict).  For each distinct tier the offered-traffic attainment
    (:func:`repro.serving.metrics.slo_attainment`) is evaluated over that
    tier's slice, and the attained request count is divided by the slice's
    cost share (dollars prorated by offered requests).  Returns
    ``{tier: {"offered", "attainment", "attained", "cost_usd",
    "attained_per_usd"}}``; untagged requests and tenants without an SLO are
    skipped.
    """
    from repro.serving.metrics import slo_attainment

    tiers: dict[str, list[Request]] = {}
    tier_targets: dict[str, Any] = {}
    for request in requests:
        slo = slos.get(request.tenant) if request.tenant else None
        if slo is None:
            continue
        name = getattr(slo, "name", str(slo))
        tiers.setdefault(name, []).append(request)
        tier_targets[name] = slo
    total_offered = sum(len(slice_) for slice_ in tiers.values())
    out: dict[str, dict[str, float]] = {}
    for name in sorted(tiers):
        slice_ = tiers[name]
        slo = tier_targets[name]
        attainment = slo_attainment(
            slice_, ttft_target_s=slo.ttft_target_s, tbt_target_s=slo.tbt_target_s
        )
        attained = attainment * len(slice_)
        share = cost_usd * len(slice_) / total_offered if total_offered else 0.0
        out[name] = {
            "offered": float(len(slice_)),
            "attainment": attainment,
            "attained": attained,
            "cost_usd": share,
            "attained_per_usd": attained / share if share > 0 else 0.0,
        }
    return out
