"""Unit constants and conversions used throughout the simulator.

All internal computations use SI base units: seconds, bytes, FLOPs, watts and
joules.  These helpers keep conversions explicit at the boundaries (GPU specs
are naturally written in GB/s and TFLOPS, results are reported in ms).
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

KILO: float = 1e3
MEGA: float = 1e6
GIGA: float = 1e9
TERA: float = 1e12

GHZ: float = 1e9

MS: float = 1e-3
US: float = 1e-6


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * 1e-3


def us_to_seconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return us * 1e-6


def bytes_to_gb(num_bytes: float) -> float:
    """Convert a byte count to (binary) gigabytes."""
    return num_bytes / GB


def gb_to_bytes(gigabytes: float) -> float:
    """Convert (binary) gigabytes to bytes."""
    return gigabytes * GB


def tflops_to_flops_per_s(tflops: float) -> float:
    """Convert TFLOPS (as printed on a spec sheet) to FLOPs per second."""
    return tflops * TERA


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert GB/s (decimal, spec-sheet style) to bytes per second."""
    return gbps * GIGA
