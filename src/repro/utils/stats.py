"""Small statistics helpers used by metrics aggregation and the benchmarks.

We intentionally avoid depending on numpy here so that lightweight metric
aggregation (latency percentiles over request lists, speedup summaries) works
on plain Python lists and stays easy to property-test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of an empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric_mean() of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100]).

    Matches ``numpy.percentile`` with the default ``linear`` interpolation so
    that latency percentiles reported by the serving simulator are standard.
    """
    if not values:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be within [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def median(values: Sequence[float]) -> float:
    """Median (P50)."""
    return percentile(values, 50.0)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a distribution of samples."""

    count: int
    mean: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from an iterable of samples."""
    samples = list(values)
    if not samples:
        raise ValueError("summarize() of an empty iterable")
    return Summary(
        count=len(samples),
        mean=mean(samples),
        minimum=min(samples),
        p50=percentile(samples, 50),
        p90=percentile(samples, 90),
        p99=percentile(samples, 99),
        maximum=max(samples),
    )
