"""Shared utilities: unit helpers, statistics, and argument validation."""

from repro.utils.units import (
    GB,
    GHZ,
    KB,
    MB,
    TERA,
    bytes_to_gb,
    seconds_to_ms,
    seconds_to_us,
)
from repro.utils.stats import (
    geometric_mean,
    mean,
    percentile,
    summarize,
)
from repro.utils.validation import (
    check_in_choices,
    check_non_negative,
    check_positive,
)

__all__ = [
    "GB",
    "GHZ",
    "KB",
    "MB",
    "TERA",
    "bytes_to_gb",
    "seconds_to_ms",
    "seconds_to_us",
    "geometric_mean",
    "mean",
    "percentile",
    "summarize",
    "check_in_choices",
    "check_non_negative",
    "check_positive",
]
