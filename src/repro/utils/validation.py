"""Argument validation helpers.

The public API raises ``ValueError`` with a descriptive message instead of
failing deep inside the simulator, which keeps configuration errors easy to
diagnose for downstream users.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_choices(name: str, value: T, choices: Iterable[T]) -> T:
    """Return ``value`` if it is one of ``choices``, otherwise raise ``ValueError``."""
    allowed = list(choices)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` if it lies in [0, 1], otherwise raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value
