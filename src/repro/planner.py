"""Capacity planner: search fleet configurations against SLO targets by cost.

The paper's fig15 P/D-ratio analysis hand-picks a few homogeneous fleets and
compares them.  This module turns that analysis into an automated optimizer:
given a workload scenario and latency SLOs, :func:`capacity_plan` sweeps a
configuration grid —

    fleet size × topology × prefill/decode pool ratio × chunk size ×
    router policy × replica hardware mix (GPU generations, spot pricing)

— simulates every candidate through the shared
:func:`repro.workloads.scenario.run_scenario` entry point, marks each
feasible or infeasible against the SLO targets, and ranks the feasible ones
by dollars (run cost, then $/1k tokens).  The cheapest feasible candidate is
the capacity plan.

Everything is deterministic: the grid is enumerated in a fixed nested order,
every simulation is seeded, and no wall-clock or RNG is consulted — the same
:class:`PlannerConfig` always yields the same plan (pinned by test and by the
fig21 benchmark baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterator, Mapping

from repro.cluster.metrics import ClusterMetrics
from repro.models.config import ClusterSpec, ReplicaSpec, replica_specs_from_mix
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PlannerConfig:
    """One capacity-planning question: workload + SLOs + search grid.

    The grid axes are tuples; the planner enumerates their cartesian product
    in field order.  ``replica_mixes`` entries use the compact mix syntax of
    :func:`repro.models.config.replica_specs_from_mix` (``"a100"``,
    ``"a100:2+a6000:2"``, trailing ``~`` = spot); a mix pattern is tiled
    cyclically up to each fleet size.  ``prefill_fractions`` only applies to
    disaggregated candidates (colocated fleets have no pools).
    """

    scenario: str = "shared-prefix-chat"
    model: str = "llama-3-8b"
    num_requests: int = 64
    seed: int = 0
    #: Total offered QPS; ``None`` keeps the scenario's default rate.
    qps: float | None = None
    # -- search grid ------------------------------------------------------
    replica_counts: tuple[int, ...] = (2, 4)
    topologies: tuple[str, ...] = ("colocated",)
    prefill_fractions: tuple[float, ...] = (0.5,)
    chunk_sizes: tuple[int, ...] = (1024,)
    routers: tuple[str, ...] = ("least-tokens",)
    replica_mixes: tuple[str, ...] = ("a100",)
    # -- SLO targets (feasibility gate) -----------------------------------
    ttft_p99_target_s: float = 2.0
    tbt_p99_target_s: float = 0.2
    #: Optional end-to-end p99 latency gate; ``None`` = not enforced.
    latency_p99_target_s: float | None = None

    def __post_init__(self) -> None:
        check_positive("num_requests", self.num_requests)
        check_positive("ttft_p99_target_s", self.ttft_p99_target_s)
        check_positive("tbt_p99_target_s", self.tbt_p99_target_s)
        for name in ("replica_counts", "topologies", "prefill_fractions",
                     "chunk_sizes", "routers", "replica_mixes"):
            if not getattr(self, name):
                raise ValueError(f"planner grid axis {name!r} must be non-empty")
        for count in self.replica_counts:
            check_positive("replica_counts entry", count)
        for fraction in self.prefill_fractions:
            if not 0.0 < fraction < 1.0:
                raise ValueError(
                    f"prefill_fractions entries must be in (0, 1), got {fraction}"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (all fields are scalars/tuples); exact."""
        out: dict[str, Any] = {}
        for cfg_field in fields(self):
            value = getattr(self, cfg_field.name)
            out[cfg_field.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlannerConfig":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        kwargs: dict[str, Any] = {}
        for cfg_field in fields(cls):
            if cfg_field.name not in data:
                continue
            value = data[cfg_field.name]
            kwargs[cfg_field.name] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)


@dataclass(frozen=True)
class PlanCandidate:
    """One evaluated grid point: configuration, metrics, feasibility."""

    replicas: int
    topology: str
    prefill_replicas: int
    chunk_size: int
    router: str
    mix: str
    metrics: ClusterMetrics = field(repr=False)
    feasible: bool = False
    violations: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        pools = f" p{self.prefill_replicas}" if self.topology == "disaggregated" else ""
        return (
            f"{self.mix} x{self.replicas} {self.topology}{pools} "
            f"chunk{self.chunk_size} {self.router}"
        )

    def row(self) -> dict[str, Any]:
        """Flat configuration + performance + economics row (CSV/JSON)."""
        fleet = self.metrics.fleet
        return {
            "mix": self.mix,
            "replicas": self.replicas,
            "topology": self.topology,
            "prefill_replicas": self.prefill_replicas,
            "chunk": self.chunk_size,
            "router": self.router,
            "feasible": int(self.feasible),
            "violations": ";".join(self.violations),
            "req_per_min": round(fleet.requests_per_minute, 2),
            "ttft_p99_s": round(fleet.ttft_p99, 3),
            "tbt_p99_s": round(fleet.tbt_p99, 4),
            "latency_p99_s": round(fleet.latency_p99, 2),
            "cost_usd": round(self.metrics.cost_usd, 6),
            "usd_per_1k_tokens": round(self.metrics.usd_per_1k_tokens, 6),
            "fleet_usd_per_hour": round(self.metrics.fleet_cost_per_hour, 2),
        }


@dataclass(frozen=True)
class PlanResult:
    """Every candidate (grid order) plus the cost-optimal feasible pick."""

    config: PlannerConfig
    candidates: tuple[PlanCandidate, ...]

    @property
    def feasible(self) -> tuple[PlanCandidate, ...]:
        return tuple(c for c in self.candidates if c.feasible)

    @property
    def best(self) -> PlanCandidate | None:
        """Cheapest feasible candidate (run dollars, then $/1k tokens, then
        grid order); ``None`` when nothing meets the SLOs."""
        feasible = self.feasible
        if not feasible:
            return None
        indexed = {id(c): i for i, c in enumerate(self.candidates)}
        return min(
            feasible,
            key=lambda c: (c.metrics.cost_usd, c.metrics.usd_per_1k_tokens, indexed[id(c)]),
        )

    def rows(self) -> list[dict[str, Any]]:
        return [candidate.row() for candidate in self.candidates]

    def summary(self) -> dict[str, Any]:
        best = self.best
        return {
            "scenario": self.config.scenario,
            "candidates": len(self.candidates),
            "feasible": len(self.feasible),
            "best": best.label if best is not None else None,
            "best_cost_usd": round(best.metrics.cost_usd, 6) if best is not None else None,
        }


def _mix_specs(mix: str, count: int, model: str) -> tuple[ReplicaSpec, ...]:
    """Tile a mix pattern cyclically up to ``count`` replicas."""
    pattern = replica_specs_from_mix(mix, model=model)
    return tuple(pattern[i % len(pattern)] for i in range(count))


def _grid(config: PlannerConfig) -> Iterator[tuple[int, str, int, int, str, str]]:
    """Deterministic nested enumeration of the search grid.

    Yields ``(replicas, topology, prefill_replicas, chunk, router, mix)``.
    Colocated candidates collapse the prefill-fraction axis (no pools);
    disaggregated candidates need at least two replicas and at least one
    replica in each pool.
    """
    for count in config.replica_counts:
        for topology in config.topologies:
            if topology == "colocated":
                pool_sizes = [0]
            else:
                if count < 2:
                    continue
                seen: list[int] = []
                for fraction in config.prefill_fractions:
                    size = min(max(1, round(count * fraction)), count - 1)
                    if size not in seen:
                        seen.append(size)
                pool_sizes = seen
            for prefill in pool_sizes:
                for chunk in config.chunk_sizes:
                    for router in config.routers:
                        for mix in config.replica_mixes:
                            yield count, topology, prefill, chunk, router, mix


def _violations(config: PlannerConfig, metrics: ClusterMetrics) -> tuple[str, ...]:
    fleet = metrics.fleet
    out: list[str] = []
    if fleet.ttft_p99 > config.ttft_p99_target_s:
        out.append(f"ttft_p99 {fleet.ttft_p99:.3f}s > {config.ttft_p99_target_s:g}s")
    if fleet.tbt_p99 > config.tbt_p99_target_s:
        out.append(f"tbt_p99 {fleet.tbt_p99:.4f}s > {config.tbt_p99_target_s:g}s")
    if (
        config.latency_p99_target_s is not None
        and fleet.latency_p99 > config.latency_p99_target_s
    ):
        out.append(
            f"latency_p99 {fleet.latency_p99:.2f}s > {config.latency_p99_target_s:g}s"
        )
    return tuple(out)


def capacity_plan(config: PlannerConfig) -> PlanResult:
    """Evaluate the whole grid and return every candidate plus the best pick.

    Each candidate is one seeded cluster simulation of the configured
    scenario on a fleet built from the candidate's mix — heterogeneous specs
    route through the same :class:`~repro.models.config.ClusterSpec` /
    :func:`~repro.cluster.topology.topology_from_spec` path as any user
    fleet, so planner numbers are real simulator numbers.
    """
    from repro.workloads.scenario import run_scenario

    candidates: list[PlanCandidate] = []
    for count, topology, prefill, chunk, router, mix in _grid(config):
        spec = ClusterSpec(
            replicas=_mix_specs(mix, count, config.model),
            topology=topology,
            prefill_replicas=prefill,
        )
        result = run_scenario(
            config.scenario,
            num_requests=config.num_requests,
            seed=config.seed,
            qps=config.qps,
            spec=spec,
            router=router,
            chunk_size=chunk,
        )
        violations = _violations(config, result.metrics)
        candidates.append(
            PlanCandidate(
                replicas=count,
                topology=topology,
                prefill_replicas=prefill,
                chunk_size=chunk,
                router=router,
                mix=mix,
                metrics=result.metrics,
                feasible=not violations,
                violations=violations,
            )
        )
    return PlanResult(config=config, candidates=tuple(candidates))
