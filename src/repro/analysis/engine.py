"""The lint engine: file walking, rule dispatch, suppression accounting.

Rules are small AST visitors implementing :class:`Rule`; the engine parses
each module once, hands every rule the same :class:`ModuleContext`, then
applies per-line suppressions to the raw findings.  A suppression must name
the rule it disables *and* document why (``# repro-lint: disable=<rule> --
<reason>``); a suppression without a reason is itself reported under the
engine's reserved ``bare-suppression`` rule, which keeps "document
intentional suppressions inline" machine-enforced rather than convention.

Files that fail to parse are reported under the reserved ``parse-error``
rule instead of crashing the run — a lint pass that dies on the file it
should be flagging is useless in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding, Suppression, parse_suppressions

#: Rule names reserved by the engine itself (not in the registry, never
#: suppressible — a suppression that tried to silence them would be one).
RESERVED_RULES = frozenset({"parse-error", "bare-suppression"})


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule needs about one module: parsed once, shared by all."""

    path: str  #: display path (repo-relative posix where possible)
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression]

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (the suppression/``--rules`` identifier) and
    ``description``, and implement :meth:`check` yielding findings for one
    module.  Rules must not mutate the context; the engine reuses it across
    the whole rule set.
    """

    name: str = "rule"
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass(slots=True)
class LintResult:
    """Outcome of one engine run (before any baseline subtraction)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str | None]] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


class LintEngine:
    """Run a rule set over modules, applying per-line suppressions."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(f"duplicate rule name(s): {duplicates}")
        reserved = sorted(set(names) & RESERVED_RULES)
        if reserved:
            raise ValueError(f"rule name(s) {reserved} are reserved by the engine")
        self.rules = list(rules)

    # ------------------------------------------------------------- modules

    def check_module(self, ctx: ModuleContext) -> LintResult:
        """Apply every rule to one parsed module."""
        result = LintResult(files_checked=1)
        for rule in self.rules:
            for finding in rule.check(ctx):
                suppression = ctx.suppressions.get(finding.line)
                if suppression is not None and suppression.covers(finding.rule):
                    suppression.used = True
                    result.suppressed.append((finding, suppression.reason))
                else:
                    result.findings.append(finding)
        for suppression in ctx.suppressions.values():
            if suppression.reason is None:
                result.findings.append(
                    Finding(
                        rule="bare-suppression",
                        path=ctx.path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "suppression without a reason — append "
                            "' -- <why this line is exempt>'"
                        ),
                    )
                )
        result.findings.sort(key=Finding.sort_key)
        return result

    def check_source(self, source: str, path: str = "<snippet>") -> LintResult:
        """Lint an in-memory snippet (the fixture-test entry point)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return LintResult(
                findings=[
                    Finding(
                        rule="parse-error",
                        path=path,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}",
                    )
                ],
                files_checked=1,
            )
        ctx = ModuleContext(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        return self.check_module(ctx)

    # --------------------------------------------------------------- files

    def run(self, paths: Iterable[str | Path], root: str | Path = ".") -> LintResult:
        """Lint every ``.py`` file under ``paths`` (files or directories).

        Display paths are made relative to ``root`` (posix separators) when
        possible, so findings and baselines are machine-independent.
        """
        root = Path(root).resolve()
        result = LintResult()
        for file_path in _collect_files(paths):
            display = _display_path(file_path, root)
            source = file_path.read_text()
            result.extend(self.check_source(source, path=display))
        result.findings.sort(key=Finding.sort_key)
        return result


def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def _display_path(file_path: Path, root: Path) -> str:
    resolved = file_path.resolve()
    try:
        return resolved.relative_to(root).as_posix()
    except ValueError:
        return resolved.as_posix()


def check_source(
    source: str,
    rules: Sequence[Rule],
    path: str = "<snippet>",
) -> LintResult:
    """One-shot convenience: lint a snippet with the given rules."""
    return LintEngine(rules).check_source(source, path=path)
