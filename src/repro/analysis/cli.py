"""``python -m repro.analysis`` — run the project-contract lint pass.

Exit codes: 0 when no finding is new against the baseline, 1 when at least
one is, 2 on usage errors.  ``--write-baseline`` accepts the current
findings as the new baseline and exits 0 (the adopt-then-burn-down
workflow); ``--format json`` emits the full machine-readable report the CI
job renders into ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.analysis import RULES, build_rules
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.engine import LintEngine
from repro.analysis.report import Report, render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint pass enforcing the repro project contracts "
        "(event-schema, determinism, default-off, caller-mutation).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of accepted findings "
        f"(default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="directory findings paths are reported relative to (default: .)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, factory in sorted(RULES.items()):
            print(f"{name}: {factory().description}")
        return 0

    rule_names = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    try:
        rules = build_rules(rule_names)
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    engine = LintEngine(rules)
    try:
        result = engine.run(args.paths, root=args.root)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = baseline_path if baseline_path is not None else DEFAULT_BASELINE
        write_baseline(target, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    baseline: Counter[tuple[str, str, str]] = Counter()
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load baseline {baseline_path}: {exc}")

    new, baselined = subtract_baseline(result.findings, baseline)
    report = Report.from_result(
        result, new, baselined, rules=[rule.name for rule in rules]
    )
    rendered = render_json(report) if args.format == "json" else render_text(report)
    print(rendered)
    return report.exit_code
