"""``event-schema``: every emission matches the declared payload schema.

The contract lives in :data:`repro.verify.events.EVENT_SCHEMAS` — a declared
kind → payload-keys table.  This rule is the static half of its enforcement
(``EventRecorder(strict_payloads=True)`` is the dynamic half):

* every ``*.emit(kind, ...)`` / ``Event(kind, ...)`` call site whose kind is
  a string literal (or a resolvable constant) must use a declared kind with
  literal keyword payload keys ⊆ the kind's schema;
* call sites whose kind is a *variable* (dispatch seams like ``TeeSink`` or
  the replica's KV observer) cannot be checked statically and are reported —
  each legitimate seam carries an inline suppression stating why, so the set
  of unchecked emission paths is enumerable by grepping for the suppression;
* when a module *declares* the tables (``ALL_KINDS`` / ``EVENT_SCHEMAS`` /
  ``GLOBAL_CLOCK_KINDS``), the rule cross-checks them against each other:
  schema keys must equal ``ALL_KINDS`` exactly and ``GLOBAL_CLOCK_KINDS``
  must be a subset — a kind added to one table but not the other is a
  finding at the declaration site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: ``emit``/``Event`` parameters that are envelope, not payload.
_ENVELOPE_KEYS = frozenset({"kind", "time", "replica_id", "request_id"})


def _reference_schemas() -> dict[str, frozenset[str]]:
    from repro.verify.events import EVENT_SCHEMAS

    return dict(EVENT_SCHEMAS)


def _reference_kind_constants() -> dict[str, str]:
    """UPPER_CASE constant name → kind string, from ``repro.verify.events``."""
    from repro.verify import events

    schemas = set(events.EVENT_SCHEMAS)
    return {
        name: value
        for name, value in vars(events).items()
        if name.isupper() and isinstance(value, str) and value in schemas
    }


class EventSchemaRule(Rule):
    name = "event-schema"
    description = (
        "emit()/Event() call sites must use a declared event kind with "
        "payload keys ⊆ EVENT_SCHEMAS[kind]; declaration tables must agree"
    )

    def __init__(
        self,
        schemas: Mapping[str, frozenset[str]] | None = None,
        kind_constants: Mapping[str, str] | None = None,
    ) -> None:
        self.schemas = (
            dict(schemas) if schemas is not None else _reference_schemas()
        )
        self.kind_constants = (
            dict(kind_constants)
            if kind_constants is not None
            else _reference_kind_constants()
        )

    # ----------------------------------------------------------------- api

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        local_constants = _module_string_constants(ctx.tree)
        yield from self._check_declarations(ctx, local_constants)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, local_constants)

    # ------------------------------------------------------ declarations

    def _check_declarations(
        self, ctx: ModuleContext, constants: dict[str, str]
    ) -> Iterator[Finding]:
        """Cross-check ALL_KINDS / EVENT_SCHEMAS / GLOBAL_CLOCK_KINDS."""
        declared: dict[str, tuple[set[str], int]] = {}
        for node in ctx.tree.body:
            target = _assign_target(node)
            if target is None:
                continue
            name, value = target
            if name not in ("ALL_KINDS", "EVENT_SCHEMAS", "GLOBAL_CLOCK_KINDS"):
                continue
            kinds = _extract_kind_set(value, constants)
            if kinds is not None:
                declared[name] = (kinds, node.lineno)

        if "ALL_KINDS" in declared and "EVENT_SCHEMAS" in declared:
            all_kinds, line = declared["ALL_KINDS"]
            schema_kinds, schema_line = declared["EVENT_SCHEMAS"]
            missing = sorted(all_kinds - schema_kinds)
            if missing:
                yield self._finding(
                    ctx,
                    schema_line,
                    f"EVENT_SCHEMAS is missing kind(s) {missing} declared in "
                    "ALL_KINDS",
                )
            extra = sorted(schema_kinds - all_kinds)
            if extra:
                yield self._finding(
                    ctx,
                    line,
                    f"ALL_KINDS is missing kind(s) {extra} declared in "
                    "EVENT_SCHEMAS",
                )
        if "ALL_KINDS" in declared and "GLOBAL_CLOCK_KINDS" in declared:
            all_kinds, _ = declared["ALL_KINDS"]
            clock_kinds, clock_line = declared["GLOBAL_CLOCK_KINDS"]
            unknown = sorted(clock_kinds - all_kinds)
            if unknown:
                yield self._finding(
                    ctx,
                    clock_line,
                    f"GLOBAL_CLOCK_KINDS contains kind(s) {unknown} not in "
                    "ALL_KINDS",
                )

    # -------------------------------------------------------------- calls

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, constants: dict[str, str]
    ) -> Iterator[Finding]:
        is_emit = isinstance(node.func, ast.Attribute) and node.func.attr == "emit"
        is_event = (
            isinstance(node.func, ast.Name) and node.func.id == "Event"
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "Event")
        if not (is_emit or is_event):
            return
        what = "emit()" if is_emit else "Event()"

        kind_node = _argument(node, position=0, keyword="kind")
        if kind_node is None:
            return  # zero-argument emit() on some unrelated object
        kind = self._resolve_kind(kind_node, constants)
        if kind is None:
            yield self._finding(
                ctx,
                node.lineno,
                f"{what} with a dynamic event kind "
                f"({ast.unparse(kind_node)!r}) cannot be statically checked",
                col=node.col_offset,
            )
            return
        schema = self.schemas.get(kind)
        if schema is None:
            yield self._finding(
                ctx,
                node.lineno,
                f"{what} uses unknown event kind {kind!r} "
                "(not declared in EVENT_SCHEMAS)",
                col=node.col_offset,
            )
            return

        payload_keys, dynamic = self._payload_keys(node, is_emit)
        if dynamic:
            yield self._finding(
                ctx,
                node.lineno,
                f"{what} for kind {kind!r} has a dynamic payload "
                "(** expansion or non-literal data dict) that cannot be "
                "statically checked",
                col=node.col_offset,
            )
        unknown = sorted(payload_keys - schema)
        if unknown:
            allowed = sorted(schema) if schema else "(no payload)"
            yield self._finding(
                ctx,
                node.lineno,
                f"{what} for kind {kind!r} carries undeclared payload "
                f"key(s) {unknown}; schema allows {allowed}",
                col=node.col_offset,
            )

    def _resolve_kind(
        self, node: ast.expr, constants: dict[str, str]
    ) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return constants.get(node.id) or self.kind_constants.get(node.id)
        if isinstance(node, ast.Attribute):  # events.ROUTED style
            return self.kind_constants.get(node.attr)
        return None

    @staticmethod
    def _payload_keys(node: ast.Call, is_emit: bool) -> tuple[set[str], bool]:
        """Literal payload keys at a call site, plus a had-dynamic-parts flag."""
        keys: set[str] = set()
        dynamic = False
        if is_emit:
            for keyword in node.keywords:
                if keyword.arg is None:  # **payload expansion
                    dynamic = True
                elif keyword.arg not in _ENVELOPE_KEYS:
                    keys.add(keyword.arg)
        else:
            data_node = _argument(node, position=4, keyword="data")
            if data_node is None:
                return keys, False
            if isinstance(data_node, ast.Dict):
                for key in data_node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
                    else:
                        dynamic = True  # dict unpacking or computed key
            else:
                dynamic = True
        return keys, dynamic

    def _finding(
        self, ctx: ModuleContext, line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            rule=self.name, path=ctx.path, line=line, col=col, message=message
        )


# ------------------------------------------------------------- ast helpers


def _assign_target(node: ast.stmt) -> tuple[str, ast.expr] | None:
    """(name, value) for a simple module-level ``NAME = <expr>`` statement."""
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
    ):
        return node.targets[0].id, node.value
    if (
        isinstance(node, ast.AnnAssign)
        and isinstance(node.target, ast.Name)
        and node.value is not None
    ):
        return node.target.id, node.value
    return None


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (kind-constant resolution)."""
    constants: dict[str, str] = {}
    for node in tree.body:
        target = _assign_target(node)
        if target is None:
            continue
        name, value = target
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            constants[name] = value.value
    return constants


def _extract_kind_set(
    node: ast.expr, constants: dict[str, str]
) -> set[str] | None:
    """Resolve a kinds declaration (tuple/set/frozenset/dict-keys) to strings.

    Unresolvable elements are skipped (the declaration check is best-effort
    on what it can see); returns None when the node is no recognizable
    collection at all.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set", "tuple", "list") and node.args:
            return _extract_kind_set(node.args[0], constants)
        return None
    elements: list[ast.expr]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        elements = list(node.elts)
    elif isinstance(node, ast.Dict):
        elements = [key for key in node.keys if key is not None]
    else:
        return None
    kinds: set[str] = set()
    for element in elements:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            kinds.add(element.value)
        elif isinstance(element, ast.Name) and element.id in constants:
            kinds.add(constants[element.id])
    return kinds


def _argument(
    node: ast.Call, position: int, keyword: str
) -> ast.expr | None:
    """The argument at ``position`` or passed as ``keyword=``, if present."""
    if len(node.args) > position:
        candidate = node.args[position]
        if isinstance(candidate, ast.Starred):
            return None
        return candidate
    for item in node.keywords:
        if item.arg == keyword:
            return item.value
    return None
