"""Project-contract static analysis for the repro codebase.

The repo's correctness story is otherwise *dynamic* — the invariant checker,
the stateful machines and the control invariants all catch contract
violations only when a test executes the offending path.  This package turns
the standing codebase contracts into an AST-level lint pass that runs in
seconds on every commit:

* ``event-schema`` — every ``emit(...)``/``Event(...)`` call site uses a kind
  declared in :data:`repro.verify.events.EVENT_SCHEMAS` with payload keys ⊆
  the declared schema, and the declaration tables themselves stay consistent.
* ``determinism`` — no unseeded RNG, wall-clock reads or bare-``set``
  iteration order leaking into simulation results.
* ``default-off`` — boolean/optional fields of config dataclasses default to
  disabled (the "all knobs default-off" contract), against an explicit
  allowlist.
* ``caller-mutation`` — public ``run``/``simulate`` entry points never mutate
  their request-list parameters without first rebinding to fresh copies.

Findings are suppressible per line (``# repro-lint: disable=<rule> -- why``),
diffable against a committed baseline file, and rendered as text or JSON.
``python -m repro.analysis`` exits nonzero on any new finding; the pass also
runs as a tier-1 pytest self-check, so the analyzer analyzes the repo that
ships it.  See ``docs/static_analysis.md`` for the rule catalog and the
suppression/baseline workflow.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.baseline import (
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    LintEngine,
    LintResult,
    ModuleContext,
    Rule,
    check_source,
)
from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.report import render_json, render_text
from repro.analysis.rules_config import DefaultOffRule
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_events import EventSchemaRule
from repro.analysis.rules_mutation import CallerMutationRule

#: Registry of rule factories, keyed by the rule name used in suppressions
#: and ``--rules``.  Adding a rule = one module with a ``Rule`` subclass plus
#: one entry here (and a catalog row in ``docs/static_analysis.md``).
RULES: dict[str, Callable[[], Rule]] = {
    EventSchemaRule.name: EventSchemaRule,
    DeterminismRule.name: DeterminismRule,
    DefaultOffRule.name: DefaultOffRule,
    CallerMutationRule.name: CallerMutationRule,
}


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in registry order."""
    return [factory() for factory in RULES.values()]


def build_rules(names: list[str] | None = None) -> list[Rule]:
    """Instantiate the named rules (all of them when ``names`` is None)."""
    if names is None:
        return default_rules()
    unknown = sorted(set(names) - set(RULES))
    if unknown:
        raise KeyError(
            f"unknown rule(s) {unknown}; registered: {sorted(RULES)}"
        )
    return [RULES[name]() for name in names]


__all__ = [
    "RULES",
    "CallerMutationRule",
    "DefaultOffRule",
    "DeterminismRule",
    "EventSchemaRule",
    "Finding",
    "LintEngine",
    "LintResult",
    "ModuleContext",
    "Rule",
    "Suppression",
    "build_rules",
    "check_source",
    "default_rules",
    "load_baseline",
    "parse_suppressions",
    "render_json",
    "render_text",
    "subtract_baseline",
    "write_baseline",
]
