"""``default-off``: config-dataclass knobs must default to disabled.

Every feature PR since the prefix cache has shipped behind a knob that is
off unless a caller opts in — that is what keeps the committed ``results/``
baselines byte-identical while the system grows.  This rule turns the
convention into a check over *config dataclasses* (``@dataclass`` classes
whose name ends in ``Config`` / ``Policy`` / ``Spec`` / ``Limits`` /
``Options``):

* ``bool`` fields must carry an explicit ``= False`` default — ``= True``
  and *no default at all* are both findings (a knob with no default forces
  every construction site to choose, which is how default-on behavior
  sneaks in through helper wrappers);
* ``X | None`` / ``Optional[X]`` fields must default to ``None``.

Intentional exceptions go in :data:`DEFAULT_ALLOWLIST` (``"Class.field"``
with the reason recorded next to it) or behind an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: Class-name suffixes that mark a dataclass as configuration.
CONFIG_SUFFIXES = ("Config", "Policy", "Spec", "Limits", "Options")

#: ``"ClassName.field"`` → reason.  The one live entry: ``multi_tenant`` is a
#: required workload *coordinate* of every fuzz sample (like ``arrival`` or
#: ``shape``), not a gating knob — each sample sets it explicitly, so a
#: default would only hide a missing draw in the strategy.
DEFAULT_ALLOWLIST: Mapping[str, str] = {
    "FuzzConfig.multi_tenant": (
        "required workload coordinate drawn by every fuzz sample, "
        "not a behavior gate"
    ),
}


class DefaultOffRule(Rule):
    name = "default-off"
    description = (
        "bool/Optional fields of config dataclasses must default to "
        "False/None (all knobs ship disabled)"
    )

    def __init__(self, allowlist: Iterable[str] | None = None) -> None:
        self.allowlist = (
            frozenset(allowlist)
            if allowlist is not None
            else frozenset(DEFAULT_ALLOWLIST)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._is_config_dataclass(node):
                yield from self._check_class(ctx, node)

    @staticmethod
    def _is_config_dataclass(node: ast.ClassDef) -> bool:
        if not node.name.endswith(CONFIG_SUFFIXES):
            return False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr
                if isinstance(target, ast.Attribute)
                else None
            )
            if name == "dataclass":
                return True
        return False

    def _check_class(
        self, ctx: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                continue
            field = f"{node.name}.{stmt.target.id}"
            if field in self.allowlist:
                continue
            annotation = ast.unparse(stmt.annotation)
            if annotation == "bool":
                if stmt.value is None:
                    yield self._finding(
                        ctx,
                        stmt,
                        f"bool knob {field} has no default — knobs ship "
                        "disabled: add '= False' (or allowlist it with a "
                        "reason)",
                    )
                elif not (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is False
                ):
                    yield self._finding(
                        ctx,
                        stmt,
                        f"bool knob {field} defaults to "
                        f"{ast.unparse(stmt.value)} — knobs ship disabled "
                        "(= False), callers opt in explicitly",
                    )
            elif _is_optional(stmt.annotation):
                if stmt.value is None:
                    yield self._finding(
                        ctx,
                        stmt,
                        f"optional knob {field} has no default — add "
                        "'= None' so the feature is absent unless opted in",
                    )
                elif not (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None
                ):
                    yield self._finding(
                        ctx,
                        stmt,
                        f"optional knob {field} defaults to "
                        f"{ast.unparse(stmt.value)} — optional features "
                        "default to None, callers opt in explicitly",
                    )

    def _finding(self, ctx: ModuleContext, node: ast.stmt, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )


def _is_optional(annotation: ast.expr) -> bool:
    """True for ``X | None`` / ``Optional[X]`` annotations."""
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _mentions_none(annotation)
    if isinstance(annotation, ast.Subscript):
        target = annotation.value
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        return name == "Optional"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: cheap textual check is enough here.
        text = annotation.value
        return "| None" in text or "Optional[" in text or text.startswith("None |")
    return False


def _mentions_none(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and child.value is None:
            return True
    return False
