"""``determinism``: no ambient randomness, wall clocks, or set-order leaks.

The repo's determinism contract (every run reproducible from its seed, every
committed baseline byte-identical across machines) reduces to three source
properties this rule enforces:

* all randomness flows through an explicitly seeded generator —
  ``np.random.default_rng(seed)`` / ``random.Random(seed)``; module-level
  ``np.random.*`` / ``random.*`` calls and *unseeded* generator
  constructions are findings;
* simulation code never reads the wall clock: ``time.time()`` /
  ``time.time_ns()`` / ``datetime.now()`` / ``utcnow()`` / ``today()`` are
  findings (``time.perf_counter()`` and ``time.process_time()`` are allowed —
  the self-profiler measures *host* cost, which is wall-clock by design, and
  never feeds simulation results);
* no iteration order is taken from a bare ``set``: ``for x in {...}`` /
  ``set(...)``, ``list(set(...))`` / ``tuple(set(...))`` and
  ``"sep".join(<set>)`` are findings — wrap in ``sorted(...)`` to pin the
  order (hash randomization makes set order a per-process coin flip).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: Seeded-generator constructors: fine *with* arguments, findings without.
_GENERATOR_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Random"})

#: numpy.random names that are generator plumbing rather than ambient RNG.
_NUMPY_SAFE = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_WALL_CLOCK_TIME = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no module-level/unseeded RNG, no wall-clock reads, no bare-set "
        "iteration order in simulation code"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = _ImportTracker()
        imports.scan(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, imports)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_set_iteration(ctx, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_set_iteration(
                        ctx, generator.iter, "comprehension"
                    )

    # --------------------------------------------------------------- calls

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, imports: "_ImportTracker"
    ) -> Iterator[Finding]:
        func = node.func

        # np.random.<fn>(...) — Attribute(fn, Attribute("random", Name(np)))
        # or <alias>.<fn>(...) after ``from numpy import random as <alias>``.
        if isinstance(func, ast.Attribute) and (
            (
                isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in imports.numpy_aliases
            )
            or (
                isinstance(func.value, ast.Name)
                and func.value.id in imports.numpy_random_aliases
            )
        ):
            yield from self._check_rng_name(
                ctx, node, func.attr, f"np.random.{func.attr}", numpy=True
            )
            return

        # random.<fn>(...) — stdlib module alias
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.random_aliases
        ):
            yield from self._check_rng_name(
                ctx, node, func.attr, f"random.{func.attr}", numpy=False
            )
            return

        # bare names imported via ``from random import shuffle`` etc.
        if isinstance(func, ast.Name) and func.id in imports.random_members:
            original = imports.random_members[func.id]
            yield from self._check_rng_name(
                ctx, node, original, f"random.{original}", numpy=False
            )
            return

        # wall clocks: time.time()/time_ns(), ``from time import time``
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WALL_CLOCK_TIME
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.time_aliases
        ):
            yield self._finding(
                ctx,
                node,
                f"wall-clock read time.{func.attr}() — simulation code must "
                "be reproducible from its seed (perf_counter/process_time "
                "are allowed for host self-profiling)",
            )
            return
        if isinstance(func, ast.Name) and func.id in imports.time_members:
            yield self._finding(
                ctx,
                node,
                f"wall-clock read {imports.time_members[func.id]}() "
                "(imported from time)",
            )
            return

        # datetime.now()/utcnow()/today(), datetime.datetime.now(), date.today()
        if isinstance(func, ast.Attribute) and func.attr in _WALL_CLOCK_DATETIME:
            base = func.value
            is_class_alias = (
                isinstance(base, ast.Name) and base.id in imports.datetime_classes
            )
            is_module_attr = (
                isinstance(base, ast.Attribute)
                and base.attr in ("datetime", "date")
                and isinstance(base.value, ast.Name)
                and base.value.id in imports.datetime_modules
            )
            if is_class_alias or is_module_attr:
                yield self._finding(
                    ctx,
                    node,
                    f"wall-clock read {ast.unparse(func)}() — timestamps "
                    "must come in as explicit inputs",
                )
                return

        # list(set(...)) / tuple(set(...)) / "x".join(set(...))
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_bare_set(node.args[0])
        ):
            yield self._finding(
                ctx,
                node,
                f"{func.id}() materializes a bare set — the element order is "
                "a per-process coin flip; wrap in sorted(...)",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and len(node.args) == 1
            and _is_bare_set(node.args[0])
        ):
            yield self._finding(
                ctx,
                node,
                "str.join() over a bare set — the element order is a "
                "per-process coin flip; wrap in sorted(...)",
            )

    def _check_rng_name(
        self,
        ctx: ModuleContext,
        node: ast.Call,
        name: str,
        rendered: str,
        numpy: bool,
    ) -> Iterator[Finding]:
        if name in _GENERATOR_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self._finding(
                    ctx,
                    node,
                    f"unseeded generator {rendered}() — pass an explicit "
                    "seed so runs are reproducible",
                )
            return
        if numpy and name in _NUMPY_SAFE:
            return
        yield self._finding(
            ctx,
            node,
            f"ambient RNG call {rendered}() shares global state across the "
            "process — draw from an explicitly seeded generator instead",
        )

    # ----------------------------------------------------------- set order

    def _check_set_iteration(
        self, ctx: ModuleContext, iter_node: ast.expr, where: str
    ) -> Iterator[Finding]:
        if _is_bare_set(iter_node):
            yield self._finding(
                ctx,
                iter_node,
                f"{where} iterates a bare set — the order is a per-process "
                "coin flip; wrap in sorted(...) if order can reach results",
            )

    def _finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _is_bare_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _ImportTracker:
    """Which local names are bound to numpy / random / time / datetime."""

    def __init__(self) -> None:
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        self.random_members: dict[str, str] = {}  # local name -> original
        self.time_aliases: set[str] = set()
        self.time_members: dict[str, str] = {}
        self.datetime_modules: set[str] = set()
        self.datetime_classes: set[str] = set()

    def scan(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "numpy":
                        self.numpy_aliases.add(local)
                    elif alias.name == "random":
                        self.random_aliases.add(local)
                    elif alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        self.random_members[alias.asname or alias.name] = alias.name
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME:
                            self.time_members[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_aliases.add(
                                alias.asname or alias.name
                            )
