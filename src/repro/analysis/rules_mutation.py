"""``caller-mutation``: public entry points never mutate caller request lists.

``ServingSimulator.run`` / ``ClusterSimulator.run`` return their input
request objects inside the result, so callers legitimately hold onto the
list they passed in — a simulator that sorts, pops or overwrites that list
corrupts the caller's view (the PR 4 cluster-input-mutation bug).  The
contract: an entry point either leaves the parameter alone or *first*
rebinds it to fresh copies (``requests = [r.fresh_copy() for r in
requests]``) and works on those.

This rule checks every function named ``run`` / ``simulate`` (or prefixed
``run_`` / ``simulate_``) with a parameter named ``requests`` (or ending in
``_requests``).  Mutating operations on the parameter — in-place method
calls (``sort``/``append``/…), item assignment/deletion, ``+=`` — are
findings unless a rebind of the name appears earlier in the function.  The
model is deliberately linear (first rebind wins, source order): entry
points here are straight-line setup code, and a contract checker should be
predictable enough to reason about from the finding message alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

_ENTRY_NAMES = ("run", "simulate")
_PARAM_NAME = "requests"

#: In-place mutators of list/dict/set objects.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
    }
)


def _is_entry_point(name: str) -> bool:
    return name in _ENTRY_NAMES or name.startswith(("run_", "simulate_"))


def _is_request_param(name: str) -> bool:
    return name == _PARAM_NAME or name.endswith("_" + _PARAM_NAME)


class CallerMutationRule(Rule):
    name = "caller-mutation"
    description = (
        "run/simulate entry points must not mutate request-list parameters "
        "without first rebinding to fresh_copy() copies"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_entry_point(node.name):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        params = [
            arg.arg
            for arg in (
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            )
            if _is_request_param(arg.arg)
        ]
        for param in params:
            yield from self._check_param(ctx, func, param)

    def _check_param(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        param: str,
    ) -> Iterator[Finding]:
        first_rebind: tuple[int, int] | None = None
        mutations: list[tuple[tuple[int, int], ast.AST, str]] = []

        for node in ast.walk(func):
            position = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if _rebinds(node, param):
                if first_rebind is None or position < first_rebind:
                    first_rebind = position
                continue
            described = _describes_mutation(node, param)
            if described is not None:
                mutations.append((position, node, described))

        for position, node, described in sorted(mutations, key=lambda m: m[0]):
            if first_rebind is not None and position > first_rebind:
                continue  # operates on the local copy made by the rebind
            yield Finding(
                rule=self.name,
                path=ctx.path,
                line=position[0],
                col=position[1],
                message=(
                    f"entry point '{func.name}' mutates caller parameter "
                    f"'{param}' via {described} — rebind to fresh copies "
                    f"first ({param} = [r.fresh_copy() for r in {param}])"
                ),
            )


def _rebinds(node: ast.AST, param: str) -> bool:
    """A statement that rebinds ``param`` to a new object (defensive copy)."""
    if isinstance(node, ast.Assign):
        return any(
            isinstance(target, ast.Name) and target.id == param
            for target in node.targets
        )
    if isinstance(node, ast.AnnAssign):
        return (
            isinstance(node.target, ast.Name)
            and node.target.id == param
            and node.value is not None
        )
    return False


def _describes_mutation(node: ast.AST, param: str) -> str | None:
    """A short description when ``node`` mutates ``param`` in place."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATING_METHODS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == param
    ):
        return f".{node.func.attr}()"
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if _is_param_subscript(target, param):
                return "item assignment"
    if isinstance(node, ast.AugAssign):
        if isinstance(node.target, ast.Name) and node.target.id == param:
            return "augmented assignment (+= mutates the caller's list)"
        if _is_param_subscript(node.target, param):
            return "augmented item assignment"
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if _is_param_subscript(target, param):
                return "item deletion"
    return None


def _is_param_subscript(node: ast.AST, param: str) -> bool:
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
    )
