"""Finding and suppression primitives shared by the lint engine and rules.

A :class:`Finding` is one contract violation at one source location; its
:meth:`Finding.fingerprint` deliberately excludes the line/column so that
baselined findings survive unrelated edits above them.  Suppressions are
per-line comments::

    risky_call()  # repro-lint: disable=determinism -- replayed from a seed file

The comment must sit on the line the finding is reported at (for multi-line
statements that is the *first* line of the statement).  Several rules can be
disabled at once (``disable=determinism,event-schema``); the ``-- reason``
tail is required — the engine reports a ``bare-suppression`` finding for
suppressions that do not document why.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: repo-relative posix path (or a display name for snippets)
    line: int  #: 1-indexed
    col: int  #: 0-indexed, as in ``ast`` node offsets
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: stable across moves within the same file."""
        return (self.rule, self.path, self.message)

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(slots=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    reason: str | None = None
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str) -> bool:
        return rule in self.rules


#: ``disable=`` takes a comma-separated list of registered rule names; an
#: optional `` -- reason`` tail documents why the line is exempt.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)(?:\s+--\s*(.*?))?\s*$"
)


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Extract per-line suppressions from ``source`` (1-indexed line keys)."""
    suppressions: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )
        reason = match.group(2)
        suppressions[lineno] = Suppression(
            line=lineno,
            rules=rules,
            reason=reason.strip() if reason and reason.strip() else None,
        )
    return suppressions
