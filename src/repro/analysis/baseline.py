"""Findings baseline: accepted pre-existing findings, committed as JSON.

The baseline lets the CLI gate on *new* findings only — the workflow for
introducing a rule into a codebase with existing violations is to commit the
current findings (``--write-baseline``), then burn the file down over time.
Fingerprints exclude line numbers, so findings survive unrelated edits; a
count per fingerprint keeps N identical findings in one file honest (fixing
one of three duplicates surfaces the regression if a fourth appears).

This repo's committed baseline (``.repro-lint-baseline.json``) is empty —
every finding is either fixed or suppressed inline with a reason — and the
tier-1 self-check keeps it that way.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Default committed baseline path, relative to the repo root.
DEFAULT_BASELINE = Path(".repro-lint-baseline.json")


def load_baseline(path: str | Path) -> Counter[tuple[str, str, str]]:
    """Load a baseline file into a fingerprint multiset."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    baseline: Counter[tuple[str, str, str]] = Counter()
    for entry in payload.get("findings", []):
        fingerprint = (entry["rule"], entry["path"], entry["message"])
        baseline[fingerprint] += int(entry.get("count", 1))
    return baseline


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Persist ``findings`` as the accepted baseline (sorted, one-per-line)."""
    counts: Counter[tuple[str, str, str]] = Counter(
        finding.fingerprint() for finding in findings
    )
    entries = [
        {"rule": rule, "path": file_path, "message": message, "count": count}
        for (rule, file_path, message), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def subtract_baseline(
    findings: list[Finding],
    baseline: Counter[tuple[str, str, str]],
) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into (new, baselined) against the fingerprint multiset."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
