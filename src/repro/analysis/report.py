"""Text and JSON reporters over an engine run + baseline subtraction."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding


@dataclass(slots=True)
class Report:
    """One CLI run's outcome: findings split into new vs baselined."""

    new: list[Finding]
    baselined: list[Finding]
    suppressed: list[tuple[Finding, str | None]]
    files_checked: int
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    @classmethod
    def from_result(
        cls,
        result: LintResult,
        new: list[Finding],
        baselined: list[Finding],
        rules: list[str],
    ) -> "Report":
        return cls(
            new=new,
            baselined=baselined,
            suppressed=result.suppressed,
            files_checked=result.files_checked,
            rules=rules,
        )


def render_text(report: Report) -> str:
    """Human-readable report: one finding per line plus a summary tail."""
    lines = [finding.render() for finding in report.new]
    if report.baselined:
        lines.append("")
        lines.append(f"baselined (accepted, not gating): {len(report.baselined)}")
    lines.append("")
    verdict = "FAIL" if report.new else "OK"
    lines.append(
        f"{verdict}: {len(report.new)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed "
        f"across {report.files_checked} file(s) "
        f"[rules: {', '.join(report.rules)}]"
    )
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Machine-readable report (the CI job renders this into the summary)."""
    payload = {
        "rules": report.rules,
        "files_checked": report.files_checked,
        "counts": {
            "new": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
        },
        "findings": [_finding_dict(finding) for finding in report.new],
        "baselined": [_finding_dict(finding) for finding in report.baselined],
        "suppressed": [
            {**_finding_dict(finding), "reason": reason}
            for finding, reason in report.suppressed
        ],
        "ok": not report.new,
    }
    return json.dumps(payload, indent=2)


def _finding_dict(finding: Finding) -> dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
