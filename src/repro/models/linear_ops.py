"""Roofline cost model for the linear (non-attention) operators of an iteration.

Hybrid batching exists precisely because linear operators are linear: prefill
and decode tokens can share one pass over the model weights.  The cost of a
linear operator for ``n`` tokens is therefore modelled as the roofline
maximum of

* compute time: ``2 * params * n / (peak_flops * gemm_efficiency(n))``, and
* memory time: weight bytes (plus activation traffic) over HBM bandwidth,

which captures the regime change the paper relies on: decode-only batches are
weight-bandwidth bound, while batches with a prefill chunk are compute bound.
Tensor-parallel all-reduces and element-wise "others" (norms, rotary,
residuals) are accounted separately so that Figure 4's breakdown can be
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import Deployment
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class LinearCostParams:
    """Tunable constants of the linear-operator roofline model."""

    peak_gemm_efficiency: float = 0.80
    gemm_efficiency_ramp_tokens: int = 256
    hbm_efficiency: float = 0.88
    elementwise_passes: float = 6.0
    allreduce_efficiency: float = 0.75
    kernel_overhead: float = 8e-6

    def gemm_efficiency(self, num_tokens: int) -> float:
        """Achieved fraction of peak tensor throughput for a GEMM over ``num_tokens`` rows."""
        if num_tokens <= 0:
            return self.peak_gemm_efficiency
        ramp = min(1.0, num_tokens / self.gemm_efficiency_ramp_tokens)
        # Even a single-token GEMM achieves some fraction of peak through weight reuse
        # across the hidden dimension; the ramp mainly reflects tensor-core tiling.
        return self.peak_gemm_efficiency * max(0.15, ramp)


@dataclass(frozen=True)
class LinearBreakdown:
    """Per-layer linear-operator times (seconds) for one iteration."""

    pre_attention: float
    post_attention: float
    ffn: float
    others: float

    @property
    def total(self) -> float:
        return self.pre_attention + self.post_attention + self.ffn + self.others

    def as_dict(self) -> dict[str, float]:
        return {
            "pre_attention": self.pre_attention,
            "post_attention": self.post_attention,
            "ffn": self.ffn,
            "others": self.others,
        }


class LinearOpCostModel:
    """Cost model for the non-attention operators of one transformer layer."""

    def __init__(self, deployment: Deployment, params: LinearCostParams | None = None) -> None:
        self.deployment = deployment
        self.params = params or LinearCostParams()

    # ------------------------------------------------------------------ core

    def _gemm_time(self, weight_params: float, num_tokens: int) -> float:
        """Roofline time of one GEMM: ``num_tokens`` rows against ``weight_params`` weights."""
        check_non_negative("num_tokens", num_tokens)
        if num_tokens == 0:
            return 0.0
        spec = self.deployment.gpu
        model = self.deployment.model
        flops = 2.0 * weight_params * num_tokens
        weight_bytes = weight_params * model.dtype_bytes
        activation_bytes = (
            num_tokens * self.deployment.model.hidden_size * model.dtype_bytes * 2
        )
        compute_time = flops / (spec.tensor_flops * self.params.gemm_efficiency(num_tokens))
        memory_time = (weight_bytes + activation_bytes) / (
            spec.hbm_bandwidth * self.params.hbm_efficiency
        )
        return max(compute_time, memory_time) + self.params.kernel_overhead

    # ------------------------------------------------------------- operators

    def pre_attention_time(self, num_tokens: int) -> float:
        """QKV projection for ``num_tokens`` tokens on one TP shard."""
        model = self.deployment.model
        qkv_params = model.hidden_size * (model.q_size + 2 * model.kv_size)
        return self._gemm_time(qkv_params / self.deployment.tensor_parallel, num_tokens)

    def post_attention_time(self, num_tokens: int) -> float:
        """Attention output projection for ``num_tokens`` tokens on one TP shard."""
        model = self.deployment.model
        out_params = model.q_size * model.hidden_size
        return self._gemm_time(out_params / self.deployment.tensor_parallel, num_tokens)

    def ffn_time(self, num_tokens: int) -> float:
        """Gated FFN (gate, up, down projections) for ``num_tokens`` tokens on one shard."""
        model = self.deployment.model
        return self._gemm_time(
            model.ffn_params_per_layer / self.deployment.tensor_parallel, num_tokens
        )

    def others_time(self, num_tokens: int) -> float:
        """Element-wise operators plus tensor-parallel collectives for one layer."""
        if num_tokens == 0:
            return 0.0
        model = self.deployment.model
        spec = self.deployment.gpu
        elementwise_bytes = (
            self.params.elementwise_passes * num_tokens * model.hidden_size * model.dtype_bytes
        )
        elementwise_time = elementwise_bytes / (spec.hbm_bandwidth * self.params.hbm_efficiency)
        allreduce_time = 0.0
        if self.deployment.tensor_parallel > 1:
            # Two all-reduces per layer (after attention and after the FFN).
            payload = num_tokens * model.hidden_size * model.dtype_bytes
            tp = self.deployment.tensor_parallel
            ring_factor = 2.0 * (tp - 1) / tp
            allreduce_time = (
                2.0
                * payload
                * ring_factor
                / (self.deployment.interconnect_bandwidth * self.params.allreduce_efficiency)
            )
        return elementwise_time + allreduce_time + self.params.kernel_overhead

    # ------------------------------------------------------------- breakdown

    def layer_breakdown(self, num_tokens: int) -> LinearBreakdown:
        """All linear-operator times for one layer processing ``num_tokens`` tokens."""
        return LinearBreakdown(
            pre_attention=self.pre_attention_time(num_tokens),
            post_attention=self.post_attention_time(num_tokens),
            ffn=self.ffn_time(num_tokens),
            others=self.others_time(num_tokens),
        )
