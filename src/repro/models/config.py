"""LLM architecture configurations and deployments.

Only the architectural quantities that drive performance are modelled:
layer counts, hidden sizes, attention head geometry (including grouped-query
attention), parameter counts and KV-cache bytes per token.  Weights are never
materialised — the paper's evaluation depends on the *shape* of the
computation, not its values.

The three models evaluated in the paper (Table 4) are provided as presets,
with the same GPU/tensor-parallel deployments the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.config import GPUSpec, a100_sxm_80gb
from repro.utils.validation import check_in_choices, check_non_negative, check_positive


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer LLM."""

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_q_heads: int
    num_kv_heads: int
    head_dim: int
    vocab_size: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("num_layers", self.num_layers)
        check_positive("hidden_size", self.hidden_size)
        check_positive("intermediate_size", self.intermediate_size)
        check_positive("num_q_heads", self.num_q_heads)
        check_positive("num_kv_heads", self.num_kv_heads)
        check_positive("head_dim", self.head_dim)
        check_positive("vocab_size", self.vocab_size)
        if self.num_q_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"{self.name}: num_q_heads ({self.num_q_heads}) must be a multiple of "
                f"num_kv_heads ({self.num_kv_heads})"
            )

    @property
    def group_size(self) -> int:
        """Query heads per KV head (GQA group size)."""
        return self.num_q_heads // self.num_kv_heads

    @property
    def q_size(self) -> int:
        return self.num_q_heads * self.head_dim

    @property
    def kv_size(self) -> int:
        return self.num_kv_heads * self.head_dim

    @property
    def attention_params_per_layer(self) -> int:
        """Parameters in QKV and output projections of one layer."""
        qkv = self.hidden_size * (self.q_size + 2 * self.kv_size)
        out = self.q_size * self.hidden_size
        return qkv + out

    @property
    def ffn_params_per_layer(self) -> int:
        """Parameters in the (gated) feed-forward network of one layer."""
        return 3 * self.hidden_size * self.intermediate_size

    @property
    def params_per_layer(self) -> int:
        return self.attention_params_per_layer + self.ffn_params_per_layer

    @property
    def total_params(self) -> int:
        """Approximate total parameter count (layers + embeddings)."""
        embeddings = 2 * self.vocab_size * self.hidden_size
        return self.num_layers * self.params_per_layer + embeddings

    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """KV-cache bytes stored per token per layer (K and V)."""
        return 2 * self.kv_size * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes stored per token across all layers."""
        return self.kv_bytes_per_token_per_layer * self.num_layers


def yi_6b() -> ModelConfig:
    """01-ai Yi-6B-200K (4 KV heads), deployed on a single A100 in the paper."""
    return ModelConfig(
        name="Yi-6B",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=11008,
        num_q_heads=32,
        num_kv_heads=4,
        head_dim=128,
        vocab_size=64000,
    )


def llama2_7b() -> ModelConfig:
    """Meta Llama-2-7B (multi-head attention: 32 KV heads)."""
    return ModelConfig(
        name="Llama-2-7B",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=11008,
        num_q_heads=32,
        num_kv_heads=32,
        head_dim=128,
        vocab_size=32000,
    )


def llama3_8b() -> ModelConfig:
    """Meta Llama-3-8B (8 KV heads, larger FFN and vocabulary)."""
    return ModelConfig(
        name="Llama-3-8B",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=14336,
        num_q_heads=32,
        num_kv_heads=8,
        head_dim=128,
        vocab_size=128256,
    )


MODEL_PRESETS = {
    "yi-6b": yi_6b,
    "llama-2-7b": llama2_7b,
    "llama-3-8b": llama3_8b,
}


def get_model(name: str) -> ModelConfig:
    """Look up a model preset by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_PRESETS:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(MODEL_PRESETS)}")
    return MODEL_PRESETS[key]()


@dataclass(frozen=True)
class Deployment:
    """A model served on one or more GPUs with tensor parallelism.

    All per-GPU quantities (heads, parameter shards, KV bytes) refer to a
    single tensor-parallel shard; the simulator models one representative GPU
    and accounts for TP collectives separately.
    """

    model: ModelConfig
    gpu: GPUSpec
    tensor_parallel: int = 1
    interconnect_bandwidth: float = 300e9  # bytes/s per direction (NVLink-ish)
    memory_budget_fraction: float = 0.9

    def __post_init__(self) -> None:
        check_positive("tensor_parallel", self.tensor_parallel)
        if self.model.num_q_heads % self.tensor_parallel != 0:
            raise ValueError(
                f"{self.model.name}: query heads ({self.model.num_q_heads}) not divisible by "
                f"tensor_parallel={self.tensor_parallel}"
            )
        if self.model.num_kv_heads % self.tensor_parallel != 0:
            raise ValueError(
                f"{self.model.name}: KV heads ({self.model.num_kv_heads}) not divisible by "
                f"tensor_parallel={self.tensor_parallel}"
            )

    @property
    def q_heads_per_gpu(self) -> int:
        return self.model.num_q_heads // self.tensor_parallel

    @property
    def kv_heads_per_gpu(self) -> int:
        return self.model.num_kv_heads // self.tensor_parallel

    @property
    def group_size(self) -> int:
        """Query heads per KV head on one shard (unchanged by TP for both head types)."""
        return self.q_heads_per_gpu // self.kv_heads_per_gpu

    @property
    def params_per_layer_per_gpu(self) -> float:
        return self.model.params_per_layer / self.tensor_parallel

    @property
    def kv_bytes_per_token_per_layer_per_gpu(self) -> int:
        return 2 * self.kv_heads_per_gpu * self.model.head_dim * self.model.dtype_bytes

    @property
    def kv_bytes_per_token_per_gpu(self) -> int:
        return self.kv_bytes_per_token_per_layer_per_gpu * self.model.num_layers

    def kv_cache_capacity_tokens(self, gpu_memory_bytes: float = 80e9) -> int:
        """Tokens of KV cache that fit in GPU memory after weights and activations."""
        weight_bytes = self.model.total_params * self.model.dtype_bytes / self.tensor_parallel
        usable = gpu_memory_bytes * self.memory_budget_fraction - weight_bytes
        if usable <= 0:
            return 0
        return int(usable // self.kv_bytes_per_token_per_gpu)


CLUSTER_TOPOLOGIES = ("colocated", "disaggregated")


@dataclass(frozen=True)
class KVTransferModel:
    """Cost of moving one request's KV cache between replicas (pools).

    ``bandwidth`` is the sustained link rate (NVLink/IB-class defaults);
    ``latency`` is the fixed per-transfer overhead (rendezvous, layer-wise
    pipelining bubbles).  The volume moved is the full multi-layer KV
    footprint of the request's context at handoff.
    """

    bandwidth: float = 64e9  # bytes/s
    latency: float = 1e-3  # s

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("latency", self.latency)

    def transfer_time(self, deployment: Deployment, context_tokens: int) -> float:
        """Seconds to ship ``context_tokens`` worth of KV cache."""
        bytes_moved = context_tokens * deployment.model.kv_bytes_per_token
        return self.latency + bytes_moved / self.bandwidth


@dataclass(frozen=True)
class ClusterSpec:
    """A fleet of identical replicas serving one model behind a router.

    ``topology`` selects how prefill and decode work is placed:

    * ``"colocated"`` — every replica runs hybrid batches (the POD-Attention
      serving model); all replicas receive external arrivals.
    * ``"disaggregated"`` — ``prefill_replicas`` replicas run prompts only and
      ship the KV cache to the remaining decode replicas over the link
      modelled by ``transfer``.

    Both topologies use the same GPU count for a given ``num_replicas``, which
    is what makes colocated-vs-disaggregated comparisons at equal hardware
    meaningful.
    """

    deployment: Deployment
    num_replicas: int
    topology: str = "colocated"
    prefill_replicas: int = 0  # disaggregated only; 0 = auto (half the fleet, >= 1)
    transfer: KVTransferModel = field(default_factory=KVTransferModel)

    def __post_init__(self) -> None:
        check_positive("num_replicas", self.num_replicas)
        check_in_choices("topology", self.topology, CLUSTER_TOPOLOGIES)
        if self.prefill_replicas < 0:
            raise ValueError(f"prefill_replicas must be >= 0, got {self.prefill_replicas}")
        if self.topology == "disaggregated":
            if self.num_replicas < 2:
                raise ValueError("disaggregated topology needs at least 2 replicas")
            if self.prefill_replicas >= self.num_replicas:
                raise ValueError(
                    f"prefill_replicas ({self.prefill_replicas}) must leave at least one "
                    f"decode replica out of {self.num_replicas}"
                )

    @property
    def resolved_prefill_replicas(self) -> int:
        """Prefill-pool size (auto: half the fleet, at least one of each pool)."""
        if self.topology != "disaggregated":
            return 0
        if self.prefill_replicas > 0:
            return self.prefill_replicas
        return max(1, self.num_replicas // 2)

    @property
    def resolved_decode_replicas(self) -> int:
        if self.topology != "disaggregated":
            return 0
        return self.num_replicas - self.resolved_prefill_replicas

    @property
    def total_gpus(self) -> int:
        return self.num_replicas * self.deployment.tensor_parallel


def paper_deployment(model_name: str, gpu: GPUSpec | None = None) -> Deployment:
    """The deployment used in the paper for each model (Table 4).

    Yi-6B runs on one A100; Llama-2-7B and Llama-3-8B run on two A100s with
    tensor parallelism.
    """
    gpu = gpu or a100_sxm_80gb()
    model = get_model(model_name)
    tensor_parallel = 1 if model.name == "Yi-6B" else 2
    return Deployment(model=model, gpu=gpu, tensor_parallel=tensor_parallel)
