"""LLM architecture configurations and deployments.

Only the architectural quantities that drive performance are modelled:
layer counts, hidden sizes, attention head geometry (including grouped-query
attention), parameter counts and KV-cache bytes per token.  Weights are never
materialised — the paper's evaluation depends on the *shape* of the
computation, not its values.

The three models evaluated in the paper (Table 4) are provided as presets,
with the same GPU/tensor-parallel deployments the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.gpu.config import GPUSpec, a100_sxm_80gb
from repro.utils.validation import check_in_choices, check_non_negative, check_positive


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer LLM."""

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_q_heads: int
    num_kv_heads: int
    head_dim: int
    vocab_size: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("num_layers", self.num_layers)
        check_positive("hidden_size", self.hidden_size)
        check_positive("intermediate_size", self.intermediate_size)
        check_positive("num_q_heads", self.num_q_heads)
        check_positive("num_kv_heads", self.num_kv_heads)
        check_positive("head_dim", self.head_dim)
        check_positive("vocab_size", self.vocab_size)
        if self.num_q_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"{self.name}: num_q_heads ({self.num_q_heads}) must be a multiple of "
                f"num_kv_heads ({self.num_kv_heads})"
            )

    @property
    def group_size(self) -> int:
        """Query heads per KV head (GQA group size)."""
        return self.num_q_heads // self.num_kv_heads

    @property
    def q_size(self) -> int:
        return self.num_q_heads * self.head_dim

    @property
    def kv_size(self) -> int:
        return self.num_kv_heads * self.head_dim

    @property
    def attention_params_per_layer(self) -> int:
        """Parameters in QKV and output projections of one layer."""
        qkv = self.hidden_size * (self.q_size + 2 * self.kv_size)
        out = self.q_size * self.hidden_size
        return qkv + out

    @property
    def ffn_params_per_layer(self) -> int:
        """Parameters in the (gated) feed-forward network of one layer."""
        return 3 * self.hidden_size * self.intermediate_size

    @property
    def params_per_layer(self) -> int:
        return self.attention_params_per_layer + self.ffn_params_per_layer

    @property
    def total_params(self) -> int:
        """Approximate total parameter count (layers + embeddings)."""
        embeddings = 2 * self.vocab_size * self.hidden_size
        return self.num_layers * self.params_per_layer + embeddings

    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """KV-cache bytes stored per token per layer (K and V)."""
        return 2 * self.kv_size * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes stored per token across all layers."""
        return self.kv_bytes_per_token_per_layer * self.num_layers

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping; every field is a scalar, so this is exact."""
        return {cfg_field.name: getattr(self, cfg_field.name) for cfg_field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelConfig":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(**{cfg_field.name: data[cfg_field.name] for cfg_field in fields(cls)})


def yi_6b() -> ModelConfig:
    """01-ai Yi-6B-200K (4 KV heads), deployed on a single A100 in the paper."""
    return ModelConfig(
        name="Yi-6B",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=11008,
        num_q_heads=32,
        num_kv_heads=4,
        head_dim=128,
        vocab_size=64000,
    )


def llama2_7b() -> ModelConfig:
    """Meta Llama-2-7B (multi-head attention: 32 KV heads)."""
    return ModelConfig(
        name="Llama-2-7B",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=11008,
        num_q_heads=32,
        num_kv_heads=32,
        head_dim=128,
        vocab_size=32000,
    )


def llama3_8b() -> ModelConfig:
    """Meta Llama-3-8B (8 KV heads, larger FFN and vocabulary)."""
    return ModelConfig(
        name="Llama-3-8B",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=14336,
        num_q_heads=32,
        num_kv_heads=8,
        head_dim=128,
        vocab_size=128256,
    )


MODEL_PRESETS = {
    "yi-6b": yi_6b,
    "llama-2-7b": llama2_7b,
    "llama-3-8b": llama3_8b,
}


def get_model(name: str) -> ModelConfig:
    """Look up a model preset by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_PRESETS:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(MODEL_PRESETS)}")
    return MODEL_PRESETS[key]()


@dataclass(frozen=True)
class Deployment:
    """A model served on one or more GPUs with tensor parallelism.

    All per-GPU quantities (heads, parameter shards, KV bytes) refer to a
    single tensor-parallel shard; the simulator models one representative GPU
    and accounts for TP collectives separately.
    """

    model: ModelConfig
    gpu: GPUSpec
    tensor_parallel: int = 1
    interconnect_bandwidth: float = 300e9  # bytes/s per direction (NVLink-ish)
    memory_budget_fraction: float = 0.9

    def __post_init__(self) -> None:
        check_positive("tensor_parallel", self.tensor_parallel)
        if self.model.num_q_heads % self.tensor_parallel != 0:
            raise ValueError(
                f"{self.model.name}: query heads ({self.model.num_q_heads}) not divisible by "
                f"tensor_parallel={self.tensor_parallel}"
            )
        if self.model.num_kv_heads % self.tensor_parallel != 0:
            raise ValueError(
                f"{self.model.name}: KV heads ({self.model.num_kv_heads}) not divisible by "
                f"tensor_parallel={self.tensor_parallel}"
            )

    @property
    def q_heads_per_gpu(self) -> int:
        return self.model.num_q_heads // self.tensor_parallel

    @property
    def kv_heads_per_gpu(self) -> int:
        return self.model.num_kv_heads // self.tensor_parallel

    @property
    def group_size(self) -> int:
        """Query heads per KV head on one shard (unchanged by TP for both head types)."""
        return self.q_heads_per_gpu // self.kv_heads_per_gpu

    @property
    def params_per_layer_per_gpu(self) -> float:
        return self.model.params_per_layer / self.tensor_parallel

    @property
    def kv_bytes_per_token_per_layer_per_gpu(self) -> int:
        return 2 * self.kv_heads_per_gpu * self.model.head_dim * self.model.dtype_bytes

    @property
    def kv_bytes_per_token_per_gpu(self) -> int:
        return self.kv_bytes_per_token_per_layer_per_gpu * self.model.num_layers

    def kv_cache_capacity_tokens(self, gpu_memory_bytes: float = 80e9) -> int:
        """Tokens of KV cache that fit in GPU memory after weights and activations."""
        weight_bytes = self.model.total_params * self.model.dtype_bytes / self.tensor_parallel
        usable = gpu_memory_bytes * self.memory_budget_fraction - weight_bytes
        if usable <= 0:
            return 0
        return int(usable // self.kv_bytes_per_token_per_gpu)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (nested model and GPU specs included); exact."""
        return {
            "model": self.model.to_dict(),
            "gpu": self.gpu.to_dict(),
            "tensor_parallel": self.tensor_parallel,
            "interconnect_bandwidth": self.interconnect_bandwidth,
            "memory_budget_fraction": self.memory_budget_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Deployment":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(
            model=ModelConfig.from_dict(data["model"]),
            gpu=GPUSpec.from_dict(data["gpu"]),
            tensor_parallel=data["tensor_parallel"],
            interconnect_bandwidth=data["interconnect_bandwidth"],
            memory_budget_fraction=data["memory_budget_fraction"],
        )


CLUSTER_TOPOLOGIES = ("colocated", "disaggregated")


@dataclass(frozen=True)
class KVTransferModel:
    """Cost of moving one request's KV cache between replicas (pools).

    ``bandwidth`` is the sustained link rate (NVLink/IB-class defaults);
    ``latency`` is the fixed per-transfer overhead (rendezvous, layer-wise
    pipelining bubbles).  The volume moved is the full multi-layer KV
    footprint of the request's context at handoff.
    """

    bandwidth: float = 64e9  # bytes/s
    latency: float = 1e-3  # s

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("latency", self.latency)

    def transfer_time(self, deployment: Deployment, context_tokens: int) -> float:
        """Seconds to ship ``context_tokens`` worth of KV cache."""
        bytes_moved = context_tokens * deployment.model.kv_bytes_per_token
        return self.latency + bytes_moved / self.bandwidth

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping; exact."""
        return {"bandwidth": self.bandwidth, "latency": self.latency}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KVTransferModel":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(bandwidth=data["bandwidth"], latency=data["latency"])


#: Reference hourly prices per *GPU* (USD/GPU-hour), keyed by
#: :attr:`GPUSpec.name`.  A replica's rate is the per-GPU rate times its
#: tensor-parallel degree.  The numbers are representative public-cloud
#: list/spot prices, fixed constants so that dollar accounting stays
#: deterministic; override per replica via :class:`ReplicaSpec` for real
#: quotes.
DEFAULT_HOURLY_RATES: dict[str, dict[str, float]] = {
    "A100-SXM4-80GB": {"on_demand": 4.10, "spot": 1.64},
    "H100-SXM5-80GB": {"on_demand": 8.20, "spot": 3.28},
    "RTX-A6000": {"on_demand": 1.10, "spot": 0.44},
}


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's hardware deployment plus its serving economics.

    ``on_demand_per_hour`` / ``spot_per_hour`` are *whole-replica* rates in
    USD/hour (all tensor-parallel shards together).  Left at ``None``, the
    rate comes from :data:`DEFAULT_HOURLY_RATES` keyed by the GPU name and
    scaled by the tensor-parallel degree; a GPU with no default rate must be
    given an explicit one.  ``spot`` selects the spot rate (cheaper, used by
    the capacity planner to model preemptible capacity pricing).
    """

    deployment: Deployment
    on_demand_per_hour: float | None = None
    spot_per_hour: float | None = None
    spot: bool = False

    def __post_init__(self) -> None:
        if self.on_demand_per_hour is not None:
            check_positive("on_demand_per_hour", self.on_demand_per_hour)
        if self.spot_per_hour is not None:
            check_positive("spot_per_hour", self.spot_per_hour)

    def _default_rate(self, kind: str) -> float:
        rates = DEFAULT_HOURLY_RATES.get(self.deployment.gpu.name)
        if rates is None:
            raise ValueError(
                f"no default hourly rate for GPU {self.deployment.gpu.name!r}; "
                "pass on_demand_per_hour/spot_per_hour explicitly "
                f"(known GPUs: {sorted(DEFAULT_HOURLY_RATES)})"
            )
        return rates[kind] * self.deployment.tensor_parallel

    @property
    def cost_per_hour(self) -> float:
        """Effective USD/replica-hour under the selected pricing (spot or on-demand)."""
        if self.spot:
            if self.spot_per_hour is not None:
                return self.spot_per_hour
            return self._default_rate("spot")
        if self.on_demand_per_hour is not None:
            return self.on_demand_per_hour
        return self._default_rate("on_demand")

    @property
    def cost_per_second(self) -> float:
        return self.cost_per_hour / 3600.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (nested deployment included); exact."""
        return {
            "deployment": self.deployment.to_dict(),
            "on_demand_per_hour": self.on_demand_per_hour,
            "spot_per_hour": self.spot_per_hour,
            "spot": self.spot,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplicaSpec":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(
            deployment=Deployment.from_dict(data["deployment"]),
            on_demand_per_hour=data["on_demand_per_hour"],
            spot_per_hour=data["spot_per_hour"],
            spot=data["spot"],
        )


@dataclass(frozen=True)
class ClusterSpec:
    """A fleet of replicas serving one model behind a router.

    Two equivalent construction forms:

    * **Homogeneous (legacy)** — ``ClusterSpec(deployment, num_replicas=N)``:
      pure sugar for ``N`` identical :class:`ReplicaSpec` entries at default
      pricing.  Every pre-existing call site keeps working unchanged.
    * **Heterogeneous** — ``ClusterSpec(replicas=[ReplicaSpec(...), ...])``:
      an explicit per-replica list mixing GPU generations, tensor-parallel
      degrees and spot/on-demand pricing.  ``deployment`` may be omitted; it
      is filled in automatically when all replica deployments are identical
      and stays ``None`` for genuinely mixed fleets.

    ``topology`` selects how prefill and decode work is placed:

    * ``"colocated"`` — every replica runs hybrid batches (the POD-Attention
      serving model); all replicas receive external arrivals.
    * ``"disaggregated"`` — the first ``prefill_replicas`` replicas run
      prompts only and ship the KV cache to the remaining decode replicas
      over the link modelled by ``transfer``.

    Both topologies use the same GPU count for a given fleet, which is what
    makes colocated-vs-disaggregated comparisons at equal hardware
    meaningful.
    """

    deployment: Deployment | None = None
    num_replicas: int = 0
    topology: str = "colocated"
    prefill_replicas: int = 0  # disaggregated only; 0 = auto (half the fleet, >= 1)
    transfer: KVTransferModel = field(default_factory=KVTransferModel)
    replicas: tuple[ReplicaSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.replicas:
            normalized = tuple(self.replicas)
            object.__setattr__(self, "replicas", normalized)
            if self.num_replicas not in (0, len(normalized)):
                raise ValueError(
                    f"num_replicas ({self.num_replicas}) disagrees with the explicit "
                    f"replicas list ({len(normalized)} entries); omit num_replicas or "
                    "make them match"
                )
            object.__setattr__(self, "num_replicas", len(normalized))
            first = normalized[0].deployment
            uniform = all(spec.deployment == first for spec in normalized)
            if self.deployment is None:
                if uniform:
                    object.__setattr__(self, "deployment", first)
            elif not uniform:
                raise ValueError(
                    "deployment= is ambiguous for a heterogeneous replicas list; "
                    "omit it (per-replica deployments come from the list)"
                )
            elif self.deployment != first:
                raise ValueError(
                    "deployment= disagrees with the deployments in the replicas list; "
                    "omit it or make them match"
                )
        else:
            if self.deployment is None:
                raise ValueError(
                    "ClusterSpec needs either deployment= and num_replicas= "
                    "(homogeneous) or an explicit replicas=[...] list"
                )
            check_positive("num_replicas", self.num_replicas)
        check_in_choices("topology", self.topology, CLUSTER_TOPOLOGIES)
        if self.prefill_replicas < 0:
            raise ValueError(f"prefill_replicas must be >= 0, got {self.prefill_replicas}")
        if self.topology == "disaggregated":
            if self.num_replicas < 2:
                raise ValueError("disaggregated topology needs at least 2 replicas")
            if self.prefill_replicas >= self.num_replicas:
                raise ValueError(
                    f"prefill_replicas={self.prefill_replicas} must be smaller than "
                    f"num_replicas={self.num_replicas} so at least one decode replica "
                    "remains; set prefill_replicas=0 for the auto split "
                    "(half the fleet, at least one replica in each pool)"
                )

    @property
    def is_heterogeneous(self) -> bool:
        """True when the fleet mixes deployments (GPU generation or TP degree)."""
        return self.deployment is None

    @property
    def resolved_replicas(self) -> tuple[ReplicaSpec, ...]:
        """The per-replica spec list; the homogeneous form expands here.

        This is the single source of truth for fleet composition: the legacy
        ``(deployment, num_replicas)`` form expands to ``num_replicas``
        identical :class:`ReplicaSpec` entries at default pricing, so every
        consumer can be written against the per-replica view.
        """
        if self.replicas:
            return self.replicas
        assert self.deployment is not None  # guaranteed by __post_init__
        return tuple(ReplicaSpec(deployment=self.deployment) for _ in range(self.num_replicas))

    def deployment_for(self, index: int) -> Deployment:
        """The deployment of replica ``index`` (0-based fleet order)."""
        return self.resolved_replicas[index].deployment

    @property
    def resolved_prefill_replicas(self) -> int:
        """Prefill-pool size (auto: half the fleet, at least one of each pool)."""
        if self.topology != "disaggregated":
            return 0
        if self.prefill_replicas > 0:
            return self.prefill_replicas
        return max(1, self.num_replicas // 2)

    @property
    def resolved_decode_replicas(self) -> int:
        if self.topology != "disaggregated":
            return 0
        return self.num_replicas - self.resolved_prefill_replicas

    @property
    def total_gpus(self) -> int:
        return sum(spec.deployment.tensor_parallel for spec in self.resolved_replicas)

    @property
    def cost_per_hour(self) -> float:
        """Whole-fleet USD/hour with every replica running."""
        return sum(spec.cost_per_hour for spec in self.resolved_replicas)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping of the *normalized* spec; exact round-trip.

        The homogeneous form serializes as ``deployment`` + ``num_replicas``
        with an empty ``replicas`` list (so legacy specs stay compact);
        explicit replica lists serialize entry by entry.
        """
        return {
            "deployment": None if self.deployment is None else self.deployment.to_dict(),
            "num_replicas": self.num_replicas,
            "topology": self.topology,
            "prefill_replicas": self.prefill_replicas,
            "transfer": self.transfer.to_dict(),
            "replicas": [spec.to_dict() for spec in self.replicas],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        deployment = data["deployment"]
        return cls(
            deployment=None if deployment is None else Deployment.from_dict(deployment),
            num_replicas=data["num_replicas"],
            topology=data["topology"],
            prefill_replicas=data["prefill_replicas"],
            transfer=KVTransferModel.from_dict(data["transfer"]),
            replicas=tuple(ReplicaSpec.from_dict(entry) for entry in data["replicas"]),
        )


def replica_specs_from_mix(
    mix: Sequence[tuple[str, int]] | str,
    *,
    model: str = "llama-3-8b",
    spot: bool = False,
) -> tuple[ReplicaSpec, ...]:
    """Expand a compact GPU-mix description into a :class:`ReplicaSpec` tuple.

    ``mix`` is either a list of ``(gpu_preset, count)`` pairs or the string
    form the planner/CLI accept: ``"a100:2+a6000:2"`` (count defaults to 1,
    a trailing ``~`` on a term marks it spot, e.g. ``"h100+a100:2~"``).
    Each term uses the paper deployment for ``model`` on that GPU.
    """
    from repro.gpu.config import get_gpu

    terms: list[tuple[str, int, bool]] = []
    if isinstance(mix, str):
        for raw_term in mix.split("+"):
            term = raw_term.strip()
            if not term:
                raise ValueError(f"empty term in replica mix {mix!r}")
            term_spot = spot
            if term.endswith("~"):
                term_spot = True
                term = term[:-1]
            name, _, count_text = term.partition(":")
            count = int(count_text) if count_text else 1
            terms.append((name, count, term_spot))
    else:
        terms = [(name, count, spot) for name, count in mix]
    specs: list[ReplicaSpec] = []
    for name, count, term_spot in terms:
        check_positive("count", count)
        deployment = paper_deployment(model, gpu=get_gpu(name))
        specs.extend(ReplicaSpec(deployment=deployment, spot=term_spot) for _ in range(count))
    if not specs:
        raise ValueError(f"replica mix {mix!r} expands to an empty fleet")
    return tuple(specs)


def paper_deployment(model_name: str, gpu: GPUSpec | None = None) -> Deployment:
    """The deployment used in the paper for each model (Table 4).

    Yi-6B runs on one A100; Llama-2-7B and Llama-3-8B run on two A100s with
    tensor parallelism.
    """
    gpu = gpu or a100_sxm_80gb()
    model = get_model(model_name)
    tensor_parallel = 1 if model.name == "Yi-6B" else 2
    return Deployment(model=model, gpu=gpu, tensor_parallel=tensor_parallel)
