"""Per-iteration runtime composition for hybrid batches.

An iteration of hybrid-batching inference executes, per layer: the QKV
projection over all tokens, prefill attention, decode attention, the output
projection, the FFN, and element-wise/collective "others" (Figure 3 of the
paper).  This module composes linear-operator costs (``repro.models.linear_ops``)
with attention costs supplied by the caller (``repro.attention`` /
``repro.core``) into the per-iteration breakdown the paper reports in
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import Deployment
from repro.models.linear_ops import LinearBreakdown, LinearCostParams, LinearOpCostModel
from repro.utils.validation import check_non_negative

# Order in which the paper reports the Figure 4 breakdown.
OPERATION_ORDER = (
    "pre_projection",
    "prefill_attention",
    "decode_attention",
    "post_projection",
    "ffn",
    "others",
)


@dataclass(frozen=True)
class IterationBreakdown:
    """Wall-clock contribution of each operation to one iteration (seconds).

    All values cover the whole iteration (i.e. they are per-layer costs
    multiplied by the layer count, plus any per-iteration overhead folded into
    ``others``).
    """

    pre_projection: float
    prefill_attention: float
    decode_attention: float
    post_projection: float
    ffn: float
    others: float

    @property
    def total(self) -> float:
        return sum(getattr(self, op) for op in OPERATION_ORDER)

    @property
    def attention_total(self) -> float:
        return self.prefill_attention + self.decode_attention

    def fractions(self) -> dict[str, float]:
        """Fraction of iteration time spent in each operation (Figure 4 rows)."""
        total = self.total
        if total <= 0:
            return {op: 0.0 for op in OPERATION_ORDER}
        return {op: getattr(self, op) / total for op in OPERATION_ORDER}

    def as_dict(self) -> dict[str, float]:
        return {op: getattr(self, op) for op in OPERATION_ORDER}


class IterationCostModel:
    """Builds :class:`IterationBreakdown` objects for a deployment.

    Attention times are supplied by the caller because the whole point of the
    paper is that they depend on *which attention kernel strategy* is used;
    this class only owns the linear-operator side and the composition rules.
    """

    def __init__(
        self,
        deployment: Deployment,
        linear_params: LinearCostParams | None = None,
        scheduler_overhead: float = 1.5e-3,
    ) -> None:
        self.deployment = deployment
        self.linear_model = LinearOpCostModel(deployment, linear_params)
        # Per-iteration CPU-side overhead (scheduling, sampling, python glue).
        self.scheduler_overhead = check_non_negative("scheduler_overhead", scheduler_overhead)

    def linear_breakdown(self, num_tokens: int) -> LinearBreakdown:
        """Per-layer linear-operator breakdown for ``num_tokens`` batched tokens."""
        return self.linear_model.layer_breakdown(num_tokens)

    def iteration_breakdown(
        self,
        num_tokens: int,
        prefill_attention_per_layer: float,
        decode_attention_per_layer: float,
    ) -> IterationBreakdown:
        """Compose a full-iteration breakdown.

        Args:
            num_tokens: Total tokens in the hybrid batch (prefill chunk + decodes).
            prefill_attention_per_layer: Prefill attention time for one layer, seconds.
            decode_attention_per_layer: Decode attention time for one layer, seconds.
        """
        check_non_negative("prefill_attention_per_layer", prefill_attention_per_layer)
        check_non_negative("decode_attention_per_layer", decode_attention_per_layer)
        layers = self.deployment.model.num_layers
        linear = self.linear_breakdown(num_tokens)
        return IterationBreakdown(
            pre_projection=linear.pre_attention * layers,
            prefill_attention=prefill_attention_per_layer * layers,
            decode_attention=decode_attention_per_layer * layers,
            post_projection=linear.post_attention * layers,
            ffn=linear.ffn * layers,
            others=linear.others * layers + self.scheduler_overhead,
        )

    def iteration_time(
        self,
        num_tokens: int,
        prefill_attention_per_layer: float = 0.0,
        decode_attention_per_layer: float = 0.0,
    ) -> float:
        """Total wall-clock time of one iteration, seconds."""
        return self.iteration_breakdown(
            num_tokens, prefill_attention_per_layer, decode_attention_per_layer
        ).total
