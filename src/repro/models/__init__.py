"""LLM model substrate: architectures, deployments and linear-operator costs."""

from repro.models.config import (
    CLUSTER_TOPOLOGIES,
    ClusterSpec,
    Deployment,
    KVTransferModel,
    MODEL_PRESETS,
    ModelConfig,
    get_model,
    llama2_7b,
    llama3_8b,
    paper_deployment,
    yi_6b,
)
from repro.models.linear_ops import LinearBreakdown, LinearCostParams, LinearOpCostModel
from repro.models.transformer import (
    IterationBreakdown,
    IterationCostModel,
    OPERATION_ORDER,
)

__all__ = [
    "CLUSTER_TOPOLOGIES",
    "ClusterSpec",
    "Deployment",
    "KVTransferModel",
    "MODEL_PRESETS",
    "ModelConfig",
    "get_model",
    "llama2_7b",
    "llama3_8b",
    "paper_deployment",
    "yi_6b",
    "LinearBreakdown",
    "LinearCostParams",
    "LinearOpCostModel",
    "IterationBreakdown",
    "IterationCostModel",
    "OPERATION_ORDER",
]
