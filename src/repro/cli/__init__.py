"""``repro`` — the operator CLI for the POD-Attention reproduction.

One argparse surface over the library's operational entry points::

    repro run     one scenario on one fleet (serving or cluster simulator)
    repro sweep   replica x router x topology grids (parallel rollout runner)
    repro plan    capacity planner: cheapest fleet that meets the SLOs
    repro report  telemetry run report bundle (HTML / markdown / CSV / trace)
    repro diff    perf-regression gate over results/ artifact directories

Invoke as ``python -m repro`` (always available) or via the ``repro``
console script when the package is installed.  Every subcommand prints
machine-readable output — JSON by default, CSV via ``--format csv`` where
the result is tabular — and exits nonzero only on operational failure
(``diff`` treats an out-of-tolerance artifact as failure; that is its job).
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
