"""Argument parsing and dispatch for the ``repro`` operator CLI.

Each subcommand is a thin adapter: parse flags, call the library entry point
(:func:`repro.workloads.scenario.run_scenario`, the cluster sweep runner,
:func:`repro.planner.capacity_plan`, the observability report generator, or
the perf-regression gate) and emit the result through
:mod:`repro.cli.output`.  Library imports happen inside the command
functions so ``repro --help`` stays instant and the CLI layer cannot create
import cycles with the simulators it wraps.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Sequence


def _add_format_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("json", "csv"),
        default="json",
        help="output format (default: json)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write output to this file instead of stdout (stdout gets a manifest)",
    )


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        default="shared-prefix-chat",
        help="workload scenario name from repro.workloads.SCENARIOS",
    )
    parser.add_argument(
        "--num-requests", type=int, default=None, help="trace size (default: scenario's own)"
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    parser.add_argument(
        "--qps", type=float, default=None, help="offered QPS (default: scenario's own)"
    )
    parser.add_argument("--model", default="llama-3-8b", help="model name from repro.models")


def cmd_run(args: argparse.Namespace) -> int:
    """Serve one scenario on one fleet and print its metrics."""
    from repro.models.config import ClusterSpec, replica_specs_from_mix
    from repro.workloads.scenario import run_scenario, scenario_table

    if args.list:
        from repro.cli.output import emit

        rows = scenario_table()
        emit({"command": "run", "scenarios": rows}, rows=rows, fmt=args.format, out=args.out)
        return 0

    spec = None
    if args.mix is not None:
        pattern = replica_specs_from_mix(args.mix, model=args.model)
        count = max(args.replicas, len(pattern))
        spec = ClusterSpec(
            replicas=tuple(pattern[i % len(pattern)] for i in range(count)),
            topology=args.topology,
            prefill_replicas=args.prefill_replicas,
        )
    elif args.prefill_replicas:
        from repro.models.config import paper_deployment

        spec = ClusterSpec(
            paper_deployment(args.model),
            args.replicas,
            topology=args.topology,
            prefill_replicas=args.prefill_replicas,
        )

    kwargs: dict[str, Any] = {} if spec is None else {"spec": spec}
    if spec is None:
        kwargs.update(replicas=args.replicas, topology=args.topology, model=args.model)
    result = run_scenario(
        args.scenario,
        num_requests=args.num_requests,
        seed=args.seed,
        qps=args.qps,
        router=args.router,
        chunk_size=args.chunk_size,
        backend=args.backend,
        **kwargs,
    )

    metrics = result.metrics
    config_row = {
        "scenario": args.scenario,
        "seed": args.seed,
        "model": args.model,
        "mix": args.mix or "",
        "chunk": args.chunk_size,
        "backend": args.backend,
    }
    payload: dict[str, Any] = {"command": "run", "config": config_row}
    if hasattr(metrics, "economics_row"):  # ClusterMetrics
        payload["metrics"] = metrics.as_row()
        payload["economics"] = metrics.economics_row()
        payload["control"] = metrics.control_row()
        row = {**config_row, **metrics.as_row(), **metrics.economics_row()}
    else:  # single-replica ServingMetrics
        payload["metrics"] = metrics.as_row()
        row = {**config_row, "replicas": 1, **metrics.as_row()}

    from repro.cli.output import emit

    emit(payload, rows=[row], fmt=args.format, out=args.out)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a replica x topology x router grid through the sweep runner."""
    from repro.cli.output import emit
    from repro.cluster.sweep import ClusterSweepPoint, run_cluster_sweep

    points = [
        ClusterSweepPoint(
            num_replicas=replicas,
            router=router,
            topology=topology,
            model=args.model,
            workload=args.scenario,
            qps_per_replica=args.qps_per_replica,
            requests_per_replica=args.requests_per_replica,
            chunk_size=args.chunk_size,
            seed=args.seed,
        )
        for replicas in args.replicas
        for topology in args.topologies
        for router in args.routers
    ]
    rows = run_cluster_sweep(points, parallel=not args.serial)
    payload = {
        "command": "sweep",
        "workload": args.scenario,
        "points": len(points),
        "rows": rows,
    }
    emit(payload, rows=rows, fmt=args.format, out=args.out)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Search fleet configurations against SLO targets; print the plan."""
    from repro.cli.output import emit
    from repro.planner import PlannerConfig, capacity_plan

    config = PlannerConfig(
        scenario=args.scenario,
        model=args.model,
        num_requests=args.num_requests or 64,
        seed=args.seed,
        qps=args.qps,
        replica_counts=tuple(args.replica_counts),
        topologies=tuple(args.topologies),
        prefill_fractions=tuple(args.prefill_fractions),
        chunk_sizes=tuple(args.chunk_sizes),
        routers=tuple(args.routers),
        replica_mixes=tuple(args.mixes),
        ttft_p99_target_s=args.ttft_p99,
        tbt_p99_target_s=args.tbt_p99,
        latency_p99_target_s=args.latency_p99,
    )
    result = capacity_plan(config)
    best = result.best
    rows = result.rows()
    payload = {
        "command": "plan",
        "config": config.to_dict(),
        "summary": result.summary(),
        "best": best.row() if best is not None else None,
        "candidates": rows,
    }
    emit(payload, rows=rows, fmt=args.format, out=args.out)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Serve a scenario under telemetry and write the run-report bundle."""
    from repro.obs.report import generate_report, scenario_telemetry

    telemetry, summary = scenario_telemetry(
        args.scenario,
        num_requests=args.num_requests,
        seed=args.seed,
        qps=args.qps,
        replicas=args.replicas,
        router=args.router,
        capacity_tokens=args.capacity_tokens,
        sample_interval=args.interval,
        model=args.model,
    )
    title = f"{args.scenario} — telemetry report (seed {args.seed})"
    paths = generate_report(telemetry, args.out, title=title, summary=summary)
    manifest = {kind: str(path) for kind, path in paths.items()}
    print(json.dumps({"command": "report", "report": manifest, "summary": summary},
                     indent=2, default=str))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Diff two results/ directories with the perf-regression gate."""
    from repro.bench.regression import compare_directories, discover_artifacts
    from repro.cli.output import emit

    patterns = args.pattern or ["*.csv", "*.json"]
    artifacts = [path.name for path in discover_artifacts(args.baseline, patterns)]
    if args.list:
        rows = [{"artifact": name} for name in artifacts]
        emit(
            {"command": "diff", "baseline": str(args.baseline), "artifacts": artifacts},
            rows=rows,
            fmt=args.format,
            out=args.out,
        )
        return 0
    regressions = compare_directories(
        args.baseline, args.current, patterns, rtol=args.rtol, atol=args.atol
    )
    payload = {
        "command": "diff",
        "baseline": str(args.baseline),
        "current": str(args.current),
        "artifacts": len(artifacts),
        "ok": not regressions,
        "regressions": regressions,
    }
    rows = [{"divergence": line} for line in regressions]
    emit(payload, rows=rows, fmt=args.format, out=args.out)
    return 1 if regressions else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operator CLI for the POD-Attention reproduction: run scenarios, "
        "sweep fleets, plan capacity, generate reports, gate regressions.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        help="serve one scenario on one fleet (serving or cluster simulator)",
        description="Serve a workload scenario and print its metrics. A single "
        "replica uses the serving simulator; --replicas/--topology/--mix build a "
        "cluster (heterogeneous fleets via --mix, e.g. 'a100:2+a6000:2~').",
    )
    _add_trace_options(run)
    run.add_argument("--replicas", type=int, default=1, help="fleet size (1 = serving simulator)")
    run.add_argument(
        "--topology", choices=("colocated", "disaggregated"), default="colocated"
    )
    run.add_argument(
        "--prefill-replicas",
        type=int,
        default=0,
        help="disaggregated prefill pool size (0 = auto split)",
    )
    run.add_argument("--router", default="least-tokens", help="cluster routing policy")
    run.add_argument(
        "--mix",
        default=None,
        help="replica hardware mix, e.g. 'a100:2+a6000:2~' (~ = spot pricing)",
    )
    run.add_argument("--chunk-size", type=int, default=1024)
    run.add_argument("--backend", default="pod", help="attention backend name")
    run.add_argument("--list", action="store_true", help="list registered scenarios and exit")
    _add_format_options(run)
    run.set_defaults(func=cmd_run)

    sweep = subparsers.add_parser(
        "sweep",
        help="replica x topology x router grid (parallel rollout runner)",
        description="Run a cluster-sweep grid at iso per-replica load; one row per "
        "grid point, fanned across processes unless --serial.",
    )
    _add_trace_options(sweep)
    sweep.add_argument(
        "--replicas", type=int, nargs="+", default=[1, 2, 4], help="fleet sizes to sweep"
    )
    sweep.add_argument(
        "--topologies", nargs="+", default=["colocated"], help="topologies to sweep"
    )
    sweep.add_argument(
        "--routers", nargs="+", default=["least-tokens"], help="routing policies to sweep"
    )
    sweep.add_argument("--qps-per-replica", type=float, default=0.85)
    sweep.add_argument("--requests-per-replica", type=int, default=24)
    sweep.add_argument("--chunk-size", type=int, default=1024)
    sweep.add_argument(
        "--serial", action="store_true", help="run grid points serially (no process pool)"
    )
    _add_format_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    plan = subparsers.add_parser(
        "plan",
        help="capacity planner: cheapest fleet that meets the SLOs",
        description="Search fleet size x topology x P/D split x chunk x router x "
        "hardware mix against TTFT/TBT SLO targets and rank feasible fleets by cost.",
    )
    _add_trace_options(plan)
    plan.add_argument("--replica-counts", type=int, nargs="+", default=[2, 4])
    plan.add_argument("--topologies", nargs="+", default=["colocated"])
    plan.add_argument("--prefill-fractions", type=float, nargs="+", default=[0.5])
    plan.add_argument("--chunk-sizes", type=int, nargs="+", default=[1024])
    plan.add_argument("--routers", nargs="+", default=["least-tokens"])
    plan.add_argument(
        "--mixes", nargs="+", default=["a100"], help="replica mixes, e.g. a100 'a100:1+a6000:1~'"
    )
    plan.add_argument("--ttft-p99", type=float, default=2.0, help="TTFT p99 target, seconds")
    plan.add_argument("--tbt-p99", type=float, default=0.2, help="TBT p99 target, seconds")
    plan.add_argument(
        "--latency-p99", type=float, default=None, help="optional end-to-end p99 target, seconds"
    )
    _add_format_options(plan)
    plan.set_defaults(func=cmd_plan)

    report = subparsers.add_parser(
        "report",
        help="telemetry run report bundle (HTML / markdown / CSV / trace)",
        description="Serve a scenario under full telemetry and write the "
        "observability report bundle; prints a JSON manifest of the artifacts.",
    )
    _add_trace_options(report)
    report.add_argument("--replicas", type=int, default=1)
    report.add_argument("--router", default="prefix-affinity")
    report.add_argument(
        "--capacity-tokens",
        type=int,
        default=None,
        help="KV capacity in tokens (default: sized from the deployment's GPU memory)",
    )
    report.add_argument("--interval", type=float, default=0.5, help="sample cadence (sim s)")
    report.add_argument("--out", default="results/obs_report", help="report output directory")
    report.set_defaults(func=cmd_report)

    diff = subparsers.add_parser(
        "diff",
        help="perf-regression gate over results/ artifact directories",
        description="Compare freshly generated benchmark artifacts against a "
        "baseline snapshot; exits 1 when any metric is out of tolerance.",
    )
    diff.add_argument("--baseline", type=Path, required=True)
    diff.add_argument("--current", type=Path, required=True)
    diff.add_argument(
        "--pattern",
        action="append",
        default=None,
        help="artifact glob(s) to compare (default: *.csv and *.json)",
    )
    # Defaults mirror repro.bench.regression.DEFAULT_RTOL / DEFAULT_ATOL
    # (not imported here so --help stays lazy).
    diff.add_argument("--rtol", type=float, default=2e-3)
    diff.add_argument("--atol", type=float, default=2e-3)
    diff.add_argument(
        "--list", action="store_true", help="list the artifacts that would be compared"
    )
    _add_format_options(diff)
    diff.set_defaults(func=cmd_diff)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))
