"""Machine-readable output for the ``repro`` CLI.

Every subcommand funnels its result through :func:`emit`: a JSON payload
(the full structured result) or CSV rows (the tabular slice of it), written
to stdout or to ``--out``.  Writing to a file prints a one-line JSON
manifest instead, so scripted callers always get parseable stdout.
"""

from __future__ import annotations

import csv
import io
import json
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence


def _csv_text(rows: Sequence[Mapping[str, Any]]) -> str:
    if not rows:
        return ""
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render(
    payload: Mapping[str, Any],
    rows: Sequence[Mapping[str, Any]],
    fmt: str,
) -> str:
    """The textual form of a command result: JSON payload or CSV rows."""
    if fmt == "csv":
        return _csv_text(rows)
    return json.dumps(payload, indent=2, default=str) + "\n"


def emit(
    payload: Mapping[str, Any],
    *,
    rows: Sequence[Mapping[str, Any]] = (),
    fmt: str = "json",
    out: str | None = None,
) -> None:
    """Write a command result to stdout, or to ``out`` with a stdout manifest."""
    text = render(payload, rows, fmt)
    if out is None:
        sys.stdout.write(text)
        return
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(json.dumps({"wrote": str(path), "format": fmt}))
