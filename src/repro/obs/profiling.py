"""Host-side self-profiling: wall clock, CPU time and peak RSS.

The simulators measure *simulated* seconds; this module measures what the
runs cost the *host*, so benchmark artifacts can track the repo's own
compute footprint over time (the ``host_profile`` block in
``results/BENCH_*.json``).  Stdlib-only on purpose: peak RSS comes from
``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux, bytes on
macOS), not psutil.

Peak RSS is a per-process high-water mark, so concurrent profilers observe
the same peak; ``rss_delta_mb`` (peak minus the value at ``start``) is the
section-attributable figure.
"""

from __future__ import annotations

import platform
import resource
import time
from typing import Any


def peak_rss_mb() -> float:
    """Process-lifetime peak resident set size, in MiB."""
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # ru_maxrss is bytes on macOS
        return maxrss / (1024.0 * 1024.0)
    return maxrss / 1024.0


class HostProfiler:
    """Measure one section of host work (context manager or start/stop).

    ::

        with HostProfiler("fig17_sweep") as prof:
            run_cluster_sweep(...)
        artifact["host_profile"] = prof.as_dict()
    """

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.peak_rss_mb = 0.0
        self.rss_delta_mb = 0.0
        self._wall_start: float | None = None
        self._cpu_start = 0.0
        self._rss_start = 0.0

    def start(self) -> "HostProfiler":
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self._rss_start = peak_rss_mb()
        return self

    def stop(self) -> "HostProfiler":
        if self._wall_start is None:
            raise RuntimeError(f"HostProfiler {self.name!r} stopped before start")
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start
        self.peak_rss_mb = peak_rss_mb()
        self.rss_delta_mb = max(self.peak_rss_mb - self._rss_start, 0.0)
        self._wall_start = None
        return self

    def __enter__(self) -> "HostProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the benchmark artifact schema)."""
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "peak_rss_mb": round(self.peak_rss_mb, 3),
            "rss_delta_mb": round(self.rss_delta_mb, 3),
        }
