"""Per-request span traces built from the simulator event stream.

:class:`SpanTracer` is an :class:`~repro.verify.events.EventSink`: attach it
(alone or behind a ``TeeSink``) as a simulator's ``recorder=`` and it folds
the run's event stream into per-request *spans* — the request timeline the
event log only states implicitly::

    queued ─ routed ─ admitted ─ prefill chunks ─ decode ─ [preempt ─ queued
    ─ admitted ─ recompute ─ decode]* ─ complete

Spans live on two kinds of tracks:

* one track per request (``queued`` / ``prefill`` / ``decode`` phases, plus
  ``recompute`` phases after a preemption), and
* one track per replica (every executed ``step``, with its batch
  composition in the span args).

:meth:`SpanTracer.to_perfetto` serializes everything as Chrome
``trace_event`` JSON (``ph="X"`` complete events plus ``ph="C"`` counter
tracks for queue depth and KV usage), so any run opens directly in the
Perfetto UI (https://ui.perfetto.dev) or ``chrome://tracing``.  Simulation
seconds map to trace microseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.verify.events import EventSink

#: Synthetic pid hosting the per-request tracks in the Perfetto view.
REQUESTS_PID = 1
#: Replica tracks use pid = _REPLICA_PID_BASE + replica_id.
_REPLICA_PID_BASE = 100


@dataclass
class Span:
    """One closed interval on a request's or replica's timeline."""

    name: str
    start: float
    end: float
    replica_id: int = -1
    request_id: int = -1
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _RequestTrack:
    """Tracer-internal per-request lifecycle state."""

    request_id: int
    arrival_time: float
    prefill_tokens: int
    decode_tokens: int
    tenant: str | None = None
    replica_id: int = -1
    remaining_prefill: int = 0
    preemptions: int = 0
    first_token_time: float | None = None
    complete_time: float | None = None
    phase: str = "queued"
    phase_start: float = 0.0
    spans: list[Span] = field(default_factory=list)

    def close_phase(self, now: float) -> None:
        if self.phase:
            self.spans.append(
                Span(
                    self.phase,
                    self.phase_start,
                    max(now, self.phase_start),
                    replica_id=self.replica_id,
                    request_id=self.request_id,
                    args={"preemptions": self.preemptions},
                )
            )

    def open_phase(self, name: str, now: float) -> None:
        self.phase = name
        self.phase_start = now


class SpanTracer(EventSink):
    """Fold simulator events into spans; export as Perfetto trace JSON."""

    def __init__(self, keep_step_spans: bool = True) -> None:
        #: Retain per-replica step spans (the densest track; disable for
        #: huge fleet runs where only request waterfalls are wanted).
        self.keep_step_spans = keep_step_spans
        self.requests: dict[int, _RequestTrack] = {}
        self.step_spans: list[Span] = []
        self.counter_samples: list[tuple[float, int, str, float]] = []
        self._last_step: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------- sink API

    def clear(self) -> None:
        self.requests.clear()
        self.step_spans.clear()
        self.counter_samples.clear()
        self._last_step.clear()

    def emit(
        self,
        kind: str,
        time: float,
        replica_id: int = -1,
        request_id: int = -1,
        **data: Any,
    ) -> None:
        if kind == "enqueued":
            # A disaggregated decode-pool enqueue re-uses the id; keep the
            # original track and treat the handoff as a queued phase.
            track = self.requests.get(request_id)
            if track is None:
                track = _RequestTrack(
                    request_id=request_id,
                    arrival_time=data.get("arrival_time", time),
                    prefill_tokens=data.get("prefill_tokens", 0),
                    decode_tokens=data.get("decode_tokens", 0),
                    tenant=data.get("tenant"),
                    replica_id=replica_id,
                    remaining_prefill=data.get("prefill_tokens", 0),
                    phase_start=time,
                )
                self.requests[request_id] = track
            else:
                track.replica_id = replica_id
        elif kind == "routed":
            track = self.requests.get(request_id)
            if track is not None:
                track.replica_id = replica_id
        elif kind == "admitted":
            track = self.requests.get(request_id)
            if track is not None:
                track.replica_id = replica_id
                track.close_phase(time)
                if track.remaining_prefill <= 0:
                    # Disaggregated decode-pool admission: the prompt was
                    # prefilled (and the first token emitted) upstream.
                    name = "decode"
                elif track.preemptions:
                    name = "recompute"
                else:
                    name = "prefill"
                track.open_phase(name, time)
        elif kind == "kv_shared_alloc":
            track = self.requests.get(request_id)
            if track is not None:
                track.remaining_prefill -= data.get("cached_tokens", 0)
        elif kind == "chunk_executed":
            track = self.requests.get(request_id)
            if track is not None:
                if data.get("phase") == "prefill":
                    track.remaining_prefill -= data.get("tokens", 0)
                    if track.remaining_prefill <= 0:
                        if track.first_token_time is None:
                            track.first_token_time = time
                        track.close_phase(time)
                        track.open_phase("decode", time)
                # Decode chunks only extend the open decode phase; the span
                # closes at release/preempt/completion.
        elif kind == "preempted":
            track = self.requests.get(request_id)
            if track is not None:
                track.close_phase(time)
                track.preemptions += 1
                track.remaining_prefill = track.prefill_tokens
                track.open_phase("queued", time)
        elif kind == "released":
            track = self.requests.get(request_id)
            if track is not None and data.get("state") != "finished":
                # First-token handoff (disaggregated): close the local phase;
                # the decode pool re-opens with its own enqueue.
                track.close_phase(time)
                track.open_phase("queued", time)
        elif kind == "completed":
            track = self.requests.get(request_id)
            if track is not None:
                track.complete_time = time
                track.close_phase(time)
                track.phase = ""
        elif kind == "step":
            start = time
            end = time + data.get("duration", 0.0)
            self._last_step[replica_id] = (start, end)
            if self.keep_step_spans:
                self.step_spans.append(
                    Span(
                        "step",
                        start,
                        end,
                        replica_id=replica_id,
                        args={
                            "num_tokens": data.get("num_tokens"),
                            "num_waiting": data.get("num_waiting"),
                            "num_running": data.get("num_running"),
                        },
                    )
                )
            if "num_waiting" in data:
                self.counter_samples.append(
                    (start, replica_id, "queue_depth", float(data["num_waiting"]))
                )
            if "kv_used_blocks" in data:
                self.counter_samples.append(
                    (start, replica_id, "kv_used_blocks", float(data["kv_used_blocks"]))
                )

    # ------------------------------------------------------------- queries

    def spans_for(self, request_id: int) -> list[Span]:
        """One request's phase spans, in chronological order."""
        track = self.requests.get(request_id)
        return list(track.spans) if track is not None else []

    def waterfall_rows(self, top_k: int = 10) -> list[dict[str, Any]]:
        """Top-K slowest completed requests with their phase breakdown.

        Each row carries the request identity, end-to-end latency, TTFT and
        the per-phase time totals — the report's waterfall input.
        """
        completed = [
            (track, track.complete_time)
            for track in self.requests.values()
            if track.complete_time is not None
        ]
        completed.sort(key=lambda pair: pair[1] - pair[0].arrival_time, reverse=True)
        rows: list[dict[str, Any]] = []
        for track, complete_time in completed[:top_k]:
            phases: dict[str, float] = {}
            for span in track.spans:
                phases[span.name] = phases.get(span.name, 0.0) + span.duration
            rows.append(
                {
                    "request_id": track.request_id,
                    "tenant": track.tenant,
                    "replica_id": track.replica_id,
                    "arrival_time": track.arrival_time,
                    "e2e_latency": complete_time - track.arrival_time,
                    "ttft": (
                        track.first_token_time - track.arrival_time
                        if track.first_token_time is not None
                        else None
                    ),
                    "preemptions": track.preemptions,
                    "prefill_tokens": track.prefill_tokens,
                    "decode_tokens": track.decode_tokens,
                    "phases": phases,
                    "spans": list(track.spans),
                }
            )
        return rows

    # ------------------------------------------------------------- export

    def to_trace_events(self) -> list[dict[str, Any]]:
        """Chrome ``trace_event`` dicts (``ts``/``dur`` in microseconds)."""
        events: list[dict[str, Any]] = [
            {
                "ph": "M",
                "pid": REQUESTS_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "requests"},
            }
        ]
        seen_replicas: set[int] = set()

        def replica_pid(replica_id: int) -> int:
            pid = _REPLICA_PID_BASE + max(replica_id, 0)
            if replica_id not in seen_replicas:
                seen_replicas.add(replica_id)
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "name": "process_name",
                        "args": {"name": f"replica {replica_id}"},
                    }
                )
            return pid

        for request_id in sorted(self.requests):
            track = self.requests[request_id]
            events.append(
                {
                    "ph": "M",
                    "pid": REQUESTS_PID,
                    "tid": request_id,
                    "name": "thread_name",
                    "args": {"name": f"req {request_id}"},
                }
            )
            for span in track.spans:
                events.append(
                    {
                        "ph": "X",
                        "pid": REQUESTS_PID,
                        "tid": request_id,
                        "name": span.name,
                        "cat": "request",
                        "ts": span.start * 1e6,
                        "dur": span.duration * 1e6,
                        "args": {"replica": span.replica_id, **span.args},
                    }
                )
        for span in self.step_spans:
            events.append(
                {
                    "ph": "X",
                    "pid": replica_pid(span.replica_id),
                    "tid": 1,
                    "name": span.name,
                    "cat": "replica",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "args": {k: v for k, v in span.args.items() if v is not None},
                }
            )
        for time, replica_id, counter, value in self.counter_samples:
            events.append(
                {
                    "ph": "C",
                    "pid": replica_pid(replica_id),
                    "tid": 0,
                    "name": counter,
                    "ts": time * 1e6,
                    "args": {"value": value},
                }
            )
        return events

    def to_perfetto(self, path: str | Path) -> Path:
        """Write the run as a Perfetto-loadable ``trace_event`` JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "traceEvents": self.to_trace_events(),
            "displayTimeUnit": "ms",
            "metadata": {"tool": "repro.obs.trace", "time_unit": "simulated microseconds"},
        }
        path.write_text(json.dumps(payload, indent=None, separators=(",", ":")) + "\n")
        return path
