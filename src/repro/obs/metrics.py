"""Metrics registry: labeled counters, gauges and log-bucketed histograms.

The registry is the telemetry layer's aggregation substrate.  Three
instrument kinds cover the signals the simulators produce:

* :class:`Counter` — monotonically increasing totals (tokens executed,
  preemptions, admissions).
* :class:`Gauge` — last-written values (queue depth, KV blocks in use).
* :class:`Histogram` — log-bucketed distributions (TTFT, TBT, step
  duration) with percentile estimates of *declared* accuracy without
  retaining samples: bucket boundaries grow geometrically by ``growth``
  per bucket, so any quantile estimate is within a factor of ``growth``
  of the true sample (relative error ≤ ``growth - 1``), independent of
  how many observations were recorded.

Every instrument takes a label tuple (``(("replica", 0), ("tenant",
"free"))``) so one metric name fans out over per-replica / per-tenant /
per-scheduler axes; :meth:`MetricsRegistry.collect` flattens everything
into rows for reports and CSV export, and same-name instruments from two
registries merge (cluster-wide rollups) with :meth:`Histogram.merge`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, TypeVar

#: Default per-bucket growth factor: 8% wide buckets give percentile
#: estimates within 8% relative error over the full value range.
DEFAULT_GROWTH = 1.08

#: Values at or below this floor land in the histogram underflow bucket
#: (simulation times are seconds; a tenth of a microsecond is below any
#: signal the simulators produce).
DEFAULT_FLOOR = 1e-7

LabelPair = tuple[str, Any]
Labels = tuple[LabelPair, ...]
#: What instrument accessors accept as a label set (normalized internally).
LabelsArg = "Mapping[str, Any] | Iterable[LabelPair] | None"

#: Value-constrained: ``MetricsRegistry._get`` returns exactly the kind asked for.
_InstrumentT = TypeVar("_InstrumentT", "Counter", "Gauge", "Histogram")


def normalize_labels(labels: Mapping[str, Any] | Iterable[LabelPair] | None) -> Labels:
    """Canonical (sorted, hashable) form of an instrument's label set."""
    if not labels:
        return ()
    items = labels.items() if isinstance(labels, Mapping) else labels
    return tuple(sorted((str(key), value) for key, value in items))


@dataclass
class Counter:
    """Monotone counter; ``inc`` is the only mutation."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (plus the running max, useful for peaks)."""

    name: str
    labels: Labels = ()
    value: float = 0.0
    max_value: float = float("-inf")

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


class Histogram:
    """Log-bucketed histogram with bounded-error percentile estimates.

    Bucket ``i`` covers ``(floor * growth**i, floor * growth**(i+1)]``;
    only non-empty buckets are stored (a dict keyed by bucket index), so
    memory is O(occupied buckets) regardless of observation count.  The
    percentile estimator returns a bucket's geometric midpoint, which
    bounds relative error by ``(growth - 1)`` against the exact sample
    percentile — the accuracy contract ``tests/test_obs_metrics.py``
    verifies against ``numpy.percentile`` on heavy-tailed samples.

    Values at or below ``floor`` (zeros included) are tracked exactly in a
    dedicated underflow bucket reported as ``floor``.
    """

    __slots__ = ("name", "labels", "growth", "floor", "_log_growth", "_buckets",
                 "count", "total", "min_value", "max_value", "_underflow")

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        growth: float = DEFAULT_GROWTH,
        floor: float = DEFAULT_FLOOR,
    ) -> None:
        if growth <= 1.0:
            raise ValueError(f"histogram {name}: growth must exceed 1, got {growth}")
        if floor <= 0.0:
            raise ValueError(f"histogram {name}: floor must be positive, got {floor}")
        self.name = name
        self.labels = labels
        self.growth = growth
        self.floor = floor
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    @property
    def relative_error(self) -> float:
        """Declared worst-case relative error of percentile estimates."""
        return self.growth - 1.0

    def observe(self, value: float) -> None:
        """Record one sample (negative values are a caller bug)."""
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative observation {value}")
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value <= self.floor:
            self._underflow += 1
            return
        index = int(math.log(value / self.floor) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimated ``pct``-th percentile (bucket geometric midpoint).

        Exact for the recorded min/max at pct 0/100; raises on an empty
        histogram, mirroring ``repro.utils.stats.percentile``.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"pct must be within [0, 100], got {pct}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        if pct == 0.0:
            return self.min_value
        if pct == 100.0:
            return self.max_value
        rank = pct / 100.0 * self.count
        seen = self._underflow
        if rank <= seen:
            return self.floor
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                # Geometric midpoint of (floor*g^i, floor*g^(i+1)].
                return self.floor * self.growth ** (index + 0.5)
        return self.max_value

    def merge(self, other: "Histogram") -> "Histogram":
        """Sum two histograms (bucket layouts must match)."""
        if (other.growth, other.floor) != (self.growth, self.floor):
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"({self.growth}, {self.floor}) vs ({other.growth}, {other.floor})"
            )
        merged = Histogram(self.name, self.labels, growth=self.growth, floor=self.floor)
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min_value = min(self.min_value, other.min_value)
        merged.max_value = max(self.max_value, other.max_value)
        merged._underflow = self._underflow + other._underflow
        merged._buckets = dict(self._buckets)
        for index, bucket_count in other._buckets.items():
            merged._buckets[index] = merged._buckets.get(index, 0) + bucket_count
        return merged

    def bucket_rows(self) -> list[dict[str, float]]:
        """Non-empty buckets as ``{low, high, count}`` rows (report charts)."""
        rows: list[dict[str, float]] = []
        if self._underflow:
            rows.append({"low": 0.0, "high": self.floor, "count": self._underflow})
        for index in sorted(self._buckets):
            rows.append(
                {
                    "low": self.floor * self.growth**index,
                    "high": self.floor * self.growth ** (index + 1),
                    "count": self._buckets[index],
                }
            )
        return rows

    def summary_row(self) -> dict[str, float]:
        """p50/p90/p99 + count/mean/max, the report's headline row."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50) if self.count else 0.0,
            "p90": self.percentile(90) if self.count else 0.0,
            "p99": self.percentile(99) if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument of one run.

    Instruments are keyed by ``(name, labels)``; asking for an existing
    key returns the same object, asking for the same name with a
    different instrument kind raises (one name, one kind — the
    Prometheus rule).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, Labels], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type[Counter] | type[Gauge] | type[Histogram]] = {}

    def _get(
        self,
        cls: type[_InstrumentT],
        name: str,
        labels: LabelsArg,
        **kwargs: Any,
    ) -> _InstrumentT:
        known = self._kinds.get(name)
        if known is not None and known is not cls:
            raise TypeError(
                f"metric {name!r} is already registered as {known.__name__}, "
                f"not {cls.__name__}"
            )
        key = (name, normalize_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
            self._kinds[name] = cls
        assert isinstance(instrument, cls)  # one name, one kind (checked above)
        return instrument

    def counter(self, name: str, labels: LabelsArg = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: LabelsArg = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: LabelsArg = None,
        growth: float = DEFAULT_GROWTH,
        floor: float = DEFAULT_FLOOR,
    ) -> Histogram:
        return self._get(Histogram, name, labels, growth=growth, floor=floor)

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._instruments.values())

    def instruments(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every label variant of one metric name."""
        return [
            inst
            for (metric_name, _labels), inst in self._instruments.items()
            if metric_name == name
        ]

    def value(self, name: str, labels: LabelsArg = None) -> float:
        """Counter/gauge value for an exact (name, labels) key; 0 if absent."""
        instrument = self._instruments.get((name, normalize_labels(labels)))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; it has no single value")
        return instrument.value

    def total(self, name: str) -> float:
        """Sum of one counter name across all label variants."""
        total = 0.0
        for inst in self.instruments(name):
            if isinstance(inst, Histogram):
                raise TypeError(f"metric {name!r} is a histogram; sum has no meaning")
            total += inst.value
        return total

    def merged_histogram(self, name: str) -> Histogram:
        """All label variants of one histogram name merged into one."""
        variants = [inst for inst in self.instruments(name) if isinstance(inst, Histogram)]
        if not variants:
            raise KeyError(f"no histogram named {name!r}")
        merged = variants[0]
        for variant in variants[1:]:
            merged = merged.merge(variant)
        return merged

    def collect(self) -> list[dict[str, Any]]:
        """Flatten every instrument into a report row (sorted by name+labels)."""
        rows: list[dict[str, Any]] = []
        for (name, labels), instrument in sorted(self._instruments.items()):
            row: dict[str, Any] = {
                "metric": name,
                "labels": ",".join(f"{k}={v}" for k, v in labels),
                "kind": type(instrument).__name__.lower(),
            }
            if isinstance(instrument, Histogram):
                row.update(instrument.summary_row())
            elif isinstance(instrument, Gauge):
                row.update({"value": instrument.value, "max": instrument.max_value})
            else:
                row.update({"value": instrument.value})
            rows.append(row)
        return rows

    def clear(self) -> None:
        self._instruments.clear()
        self._kinds.clear()
