"""Run-report generator: one HTML page (plus markdown) per telemetry run.

Turns a finalized :class:`~repro.obs.telemetry.Telemetry` into a
self-contained artifact bundle:

* ``report.html`` — run summary, metric registry table, latency histograms
  (CSS bar charts), fleet time-series (inline SVG sparklines) and the top-K
  slowest requests as span waterfalls.  No external assets; opens anywhere.
* ``report.md`` — the same tables in markdown, for PR comments and logs.
* ``timeseries.csv`` — the :class:`~repro.obs.sampler.FleetSampler` rows.
* ``trace.json`` — the Perfetto-loadable span trace
  (https://ui.perfetto.dev).

The module is also a CLI that serves any registered workload scenario with
telemetry attached and reports on it::

    PYTHONPATH=src python -m repro.obs.report --scenario shared-prefix-chat \\
        --num-requests 48 --seed 19 --out results/obs_report

``--replicas N`` switches to a cluster run (``--router`` picks the policy).
"""

from __future__ import annotations

import argparse
import html as html_mod
import json
from pathlib import Path
from typing import Any, Sequence

from repro.obs.metrics import Histogram
from repro.obs.telemetry import Telemetry

#: Waterfall phase colors (also the HTML legend order).
PHASE_COLORS = {
    "queued": "#b5b5b5",
    "prefill": "#4c78a8",
    "recompute": "#e45756",
    "decode": "#59a14f",
}

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem;
       color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin: 0.5rem 0; }
th, td { border: 1px solid #ddd; padding: 0.25rem 0.6rem; text-align: right; }
th { background: #f5f5f5; } td:first-child, th:first-child { text-align: left; }
.bar { background: #4c78a8; height: 0.8rem; display: inline-block; }
.lane { position: relative; height: 1.1rem; background: #fafafa;
        border: 1px solid #eee; margin: 2px 0; }
.lane span { position: absolute; top: 0; bottom: 0; }
.legend span { display: inline-block; width: 0.9rem; height: 0.9rem;
               margin: 0 0.3rem 0 1rem; vertical-align: middle; }
.small { color: #666; font-size: 0.8rem; }
svg { background: #fafafa; border: 1px solid #eee; }
"""


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _html_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    if not rows:
        return "<p class='small'>(no rows)</p>"
    columns = list(columns or rows[0].keys())
    head = "".join(f"<th>{html_mod.escape(str(c))}</th>" for c in columns)
    body: list[str] = []
    for row in rows:
        cells = "".join(
            f"<td>{html_mod.escape(_fmt(row.get(c, '')))}</td>" for c in columns
        )
        body.append(f"<tr>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def _md_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    if not rows:
        return "_(no rows)_"
    columns = list(columns or rows[0].keys())
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def _histogram_chart(hist: Histogram, unit: str = "s") -> str:
    """One histogram as an HTML bucket-bar table."""
    rows = hist.bucket_rows()
    if not rows:
        return "<p class='small'>(empty)</p>"
    peak = max(row["count"] for row in rows)
    out = ["<table><tr><th>bucket</th><th>count</th><th></th></tr>"]
    for row in rows:
        width = max(int(160 * row["count"] / peak), 2)
        out.append(
            f"<tr><td>{row['low']:.4g}&ndash;{row['high']:.4g} {unit}</td>"
            f"<td>{row['count']}</td>"
            f"<td style='text-align:left'><span class='bar' "
            f"style='width:{width}px'></span></td></tr>"
        )
    out.append("</table>")
    summary = hist.summary_row()
    out.append(
        "<p class='small'>"
        + " &middot; ".join(f"{k}={_fmt(v)}" for k, v in summary.items())
        + f" &middot; &plusmn;{hist.relative_error * 100:.0f}% bucket error</p>"
    )
    return "".join(out)


def _sparkline(points: Sequence[tuple[float, float]], width: int = 640, height: int = 80) -> str:
    """Inline SVG polyline over (x, y) samples."""
    if len(points) < 2:
        return "<p class='small'>(not enough samples)</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_span = (max(xs) - min(xs)) or 1.0
    y_peak = max(ys) or 1.0
    coords = " ".join(
        f"{(x - min(xs)) / x_span * (width - 8) + 4:.1f},"
        f"{height - 4 - y / y_peak * (height - 8):.1f}"
        for x, y in points
    )
    return (
        f"<svg width='{width}' height='{height}'>"
        f"<polyline points='{coords}' fill='none' stroke='#4c78a8' stroke-width='1.5'/>"
        f"</svg>"
        f"<p class='small'>t &isin; [{min(xs):.4g}, {max(xs):.4g}] s, "
        f"peak {y_peak:.4g}</p>"
    )


def _waterfall(rows: Sequence[dict[str, Any]]) -> str:
    """Top-K slowest requests as per-phase horizontal span lanes."""
    if not rows:
        return "<p class='small'>(no completed requests)</p>"
    legend = "".join(
        f"<span style='background:{color}'></span>{name}"
        for name, color in PHASE_COLORS.items()
    )
    out = [f"<p class='legend small'>{legend}</p>"]
    for row in rows:
        start = row["arrival_time"]
        extent = max(row["e2e_latency"], 1e-12)
        lane: list[str] = []
        for span in row["spans"]:
            left = (span.start - start) / extent * 100.0
            width = max(span.duration / extent * 100.0, 0.15)
            color = PHASE_COLORS.get(span.name, "#888")
            lane.append(
                f"<span title='{html_mod.escape(span.name)} {span.duration:.4g}s' "
                f"style='left:{left:.2f}%;width:{width:.2f}%;background:{color}'></span>"
            )
        ttft = f"{row['ttft']:.3f}s" if row["ttft"] is not None else "-"
        out.append(
            f"<p class='small'>req {row['request_id']} &middot; replica "
            f"{row['replica_id']} &middot; e2e {row['e2e_latency']:.3f}s &middot; "
            f"ttft {ttft} &middot; preemptions {row['preemptions']}</p>"
            f"<div class='lane'>{''.join(lane)}</div>"
        )
    return "".join(out)


# ---------------------------------------------------------------- rendering


def _latency_histograms(telemetry: Telemetry) -> list[tuple[str, Histogram]]:
    sections: list[tuple[str, Histogram]] = []
    for name in ("request_e2e_s", "request_ttft_s", "request_tbt_s", "step_duration_s"):
        if telemetry.registry.instruments(name):
            sections.append((name, telemetry.registry.merged_histogram(name)))
    return sections


def render_html(telemetry: Telemetry, title: str, summary: dict[str, Any] | None = None) -> str:
    """The full self-contained HTML report."""
    fleet = telemetry.sampler.fleet_series()
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html_mod.escape(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{html_mod.escape(title)}</h1>",
    ]
    if summary:
        parts.append("<h2>Run summary</h2>")
        parts.append(_html_table([summary]))
    parts.append("<h2>Latency distributions</h2>")
    for name, hist in _latency_histograms(telemetry):
        parts.append(f"<h3 class='small'>{html_mod.escape(name)}</h3>")
        parts.append(_histogram_chart(hist))
    parts.append("<h2>Fleet time-series</h2>")
    for column in ("queue_depth", "running", "kv_utilization", "prefix_hit_rate"):
        if column == "prefix_hit_rate":
            # Rates don't sum across replicas; chart the fleet mean.
            by_time: dict[float, list[float]] = {}
            for row in telemetry.sampler.rows:
                by_time.setdefault(row["time_s"], []).append(row["prefix_hit_rate"])
            points = [(t, sum(v) / len(v)) for t, v in sorted(by_time.items())]
        else:
            points = [(row["time_s"], row[column]) for row in fleet]
        parts.append(f"<h3 class='small'>{column}</h3>")
        parts.append(_sparkline(points))
    parts.append("<p class='small'>Full series in <code>timeseries.csv</code>; "
                 "span trace in <code>trace.json</code> (open in "
                 "<a href='https://ui.perfetto.dev'>ui.perfetto.dev</a>).</p>")
    parts.append("<h2>Slowest requests</h2>")
    parts.append(_waterfall(telemetry.tracer.waterfall_rows()))
    parts.append("<h2>Metric registry</h2>")
    parts.append(_html_table(telemetry.registry.collect()))
    parts.append("</body></html>")
    return "".join(parts)


def render_markdown(telemetry: Telemetry, title: str, summary: dict[str, Any] | None = None) -> str:
    """The markdown sibling of :func:`render_html` (tables only)."""
    parts = [f"# {title}", ""]
    if summary:
        parts += ["## Run summary", "", _md_table([summary]), ""]
    latency_rows = [
        {"metric": name, **hist.summary_row()}
        for name, hist in _latency_histograms(telemetry)
    ]
    parts += ["## Latency distributions", "", _md_table(latency_rows), ""]
    waterfall = telemetry.tracer.waterfall_rows()
    rows = [
        {
            "request": row["request_id"],
            "replica": row["replica_id"],
            "e2e_s": row["e2e_latency"],
            "ttft_s": row["ttft"] if row["ttft"] is not None else "-",
            "preemptions": row["preemptions"],
            **{f"{k}_s": v for k, v in sorted(row["phases"].items())},
        }
        for row in waterfall
    ]
    parts += ["## Slowest requests", "", _md_table(rows), ""]
    parts += ["## Metric registry", "", _md_table(telemetry.registry.collect()), ""]
    return "\n".join(parts)


def generate_report(
    telemetry: Telemetry,
    out_dir: str | Path,
    title: str = "telemetry report",
    summary: dict[str, Any] | None = None,
) -> dict[str, Path]:
    """Write the full artifact bundle; returns the paths keyed by kind."""
    telemetry.finalize()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "html": out / "report.html",
        "markdown": out / "report.md",
        "timeseries_csv": out / "timeseries.csv",
        "trace_json": out / "trace.json",
    }
    paths["html"].write_text(render_html(telemetry, title, summary))
    paths["markdown"].write_text(render_markdown(telemetry, title, summary))
    telemetry.sampler.to_csv(paths["timeseries_csv"])
    telemetry.tracer.to_perfetto(paths["trace_json"])
    return paths


# ---------------------------------------------------------------------- CLI


def scenario_telemetry(
    scenario: str,
    num_requests: int | None = None,
    seed: int = 0,
    qps: float | None = None,
    replicas: int = 1,
    router: str = "prefix-affinity",
    capacity_tokens: int | None = None,
    sample_interval: float = 0.5,
    model: str = "llama-3-8b",
    overrides: dict[str, Any] | None = None,
) -> tuple[Telemetry, dict[str, Any]]:
    """Serve one registered scenario with a fresh Telemetry attached.

    Returns ``(telemetry, summary_row)``.  A thin telemetry dressing over
    :func:`repro.workloads.scenario.run_scenario` (the shared entry point):
    single-replica runs use the Sarathi+POD memory-pressure stack (prefix
    caching on); ``replicas > 1`` runs a colocated cluster under ``router``.
    """
    from repro.bench.pressure_rows import FIG19_CHUNK_SIZE
    from repro.models.config import paper_deployment
    from repro.serving.kv_cache import KVCacheConfig
    from repro.workloads.scenario import run_scenario

    deployment = paper_deployment(model)
    telemetry = Telemetry(sample_interval=sample_interval)
    if capacity_tokens is None:
        # Deployment-sized capacity (the fig17 configuration) fits any
        # registry scenario; explicit capacities simulate memory pressure.
        kv_config = KVCacheConfig.for_deployment(deployment, enable_prefix_caching=True)
    else:
        kv_config = KVCacheConfig(
            capacity_tokens=capacity_tokens, block_size=16, enable_prefix_caching=True
        )
    result = run_scenario(
        scenario,
        num_requests=num_requests,
        seed=seed,
        qps=qps,
        overrides=overrides,
        recorder=telemetry,
        model=model,
        replicas=replicas,
        router=router,
        chunk_size=FIG19_CHUNK_SIZE,
        backend="pod",
        kv_config=kv_config,
    )
    metrics = result.metrics
    summary: dict[str, Any] = getattr(metrics, "fleet", metrics).as_row()
    telemetry.finalize()
    summary = {"scenario": scenario, "replicas": replicas, "seed": seed, **summary}
    return telemetry, summary


def run_scenario_with_telemetry(
    scenario: str,
    num_requests: int | None = None,
    seed: int = 0,
    qps: float | None = None,
    replicas: int = 1,
    router: str = "prefix-affinity",
    capacity_tokens: int | None = None,
    sample_interval: float = 0.5,
    model: str = "llama-3-8b",
) -> tuple[Telemetry, dict[str, Any]]:
    """Deprecated alias of :func:`scenario_telemetry`.

    The scenario entry points were unified behind
    :func:`repro.workloads.scenario.run_scenario`; this wrapper survives one
    release for callers of the old name.
    """
    import warnings

    warnings.warn(
        "run_scenario_with_telemetry() is deprecated; use "
        "repro.obs.report.scenario_telemetry() or "
        "repro.workloads.scenario.run_scenario(recorder=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return scenario_telemetry(
        scenario,
        num_requests=num_requests,
        seed=seed,
        qps=qps,
        replicas=replicas,
        router=router,
        capacity_tokens=capacity_tokens,
        sample_interval=sample_interval,
        model=model,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Serve a workload scenario with telemetry and write a run report.",
    )
    parser.add_argument("--scenario", default="shared-prefix-chat")
    parser.add_argument("--num-requests", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--qps", type=float, default=None)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument("--router", default="prefix-affinity")
    parser.add_argument(
        "--capacity-tokens",
        type=int,
        default=None,
        help="KV capacity in tokens (default: sized from the deployment's GPU memory)",
    )
    parser.add_argument("--interval", type=float, default=0.5, help="sample cadence (sim s)")
    parser.add_argument("--model", default="llama-3-8b")
    parser.add_argument("--out", default="results/obs_report")
    args = parser.parse_args(argv)

    telemetry, summary = scenario_telemetry(
        args.scenario,
        num_requests=args.num_requests,
        seed=args.seed,
        qps=args.qps,
        replicas=args.replicas,
        router=args.router,
        capacity_tokens=args.capacity_tokens,
        sample_interval=args.interval,
        model=args.model,
    )
    title = f"{args.scenario} — telemetry report (seed {args.seed})"
    paths = generate_report(telemetry, args.out, title=title, summary=summary)
    manifest = {kind: str(path) for kind, path in paths.items()}
    print(json.dumps({"report": manifest, "summary": summary}, indent=2, default=str))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
