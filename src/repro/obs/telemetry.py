"""One-stop telemetry sink: registry + span tracer + fleet sampler.

:class:`Telemetry` is the front door of ``repro.obs``.  It is an
:class:`~repro.verify.events.EventSink`, so enabling full observability on
any simulator is one argument::

    telemetry = Telemetry()
    sim = ServingSimulator(deployment, recorder=telemetry)
    sim.run(requests)
    telemetry.finalize()
    telemetry.registry.merged_histogram("request_e2e_s").percentile(99)

and combining it with the verifier's recorder is a list (the simulators
normalize it through :func:`~repro.verify.events.as_sink`)::

    sim = ServingSimulator(deployment, recorder=[recorder, telemetry])

Telemetry is **opt-in**: with ``recorder=None`` (the default everywhere)
the simulators skip every emission site on a single ``is not None`` check,
so runs without telemetry are byte-identical to runs before this subsystem
existed.

One emission path feeds three consumers:

* :attr:`registry` — :class:`~repro.obs.metrics.MetricsRegistry` of
  counters / gauges / histograms (the metric catalog is in
  ``docs/observability.md``),
* :attr:`tracer` — :class:`~repro.obs.trace.SpanTracer` per-request span
  timelines, exportable as Perfetto trace JSON,
* :attr:`sampler` — :class:`~repro.obs.sampler.FleetSampler` cadenced
  fleet time-series, exportable as CSV.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import DEFAULT_INTERVAL, FleetSampler
from repro.obs.trace import SpanTracer
from repro.verify.events import EventSink


class Telemetry(EventSink):
    """Bundle registry, tracer and sampler behind one ``recorder=`` sink."""

    def __init__(
        self,
        sample_interval: float = DEFAULT_INTERVAL,
        keep_step_spans: bool = True,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(keep_step_spans=keep_step_spans)
        self.sampler = FleetSampler(interval=sample_interval)
        self._finalized = False

    def clear(self) -> None:
        self.registry.clear()
        self.tracer.clear()
        self.sampler.clear()
        self._finalized = False

    def emit(
        self,
        kind: str,
        time: float,
        replica_id: int = -1,
        request_id: int = -1,
        **data: Any,
    ) -> None:
        # Tracer first: the registry's latency observations read the track
        # state (arrival / first-token times) the tracer just updated.
        self.tracer.emit(  # repro-lint: disable=event-schema -- fan-out relay; originating sites are checked
            kind, time, replica_id=replica_id, request_id=request_id, **data
        )
        self.sampler.emit(  # repro-lint: disable=event-schema -- fan-out relay; originating sites are checked
            kind, time, replica_id=replica_id, request_id=request_id, **data
        )

        registry = self.registry
        replica = {"replica": replica_id}
        if kind == "chunk_executed":
            phase = "prefill" if data.get("phase") == "prefill" else "decode"
            registry.counter(f"serving_{phase}_tokens_total", replica).inc(
                data.get("tokens", 0)
            )
        elif kind == "step":
            registry.histogram("step_duration_s", replica).observe(
                data.get("duration", 0.0)
            )
            if "num_waiting" in data:
                registry.gauge("queue_depth", replica).set(data["num_waiting"])
            if "kv_used_blocks" in data:
                registry.gauge("kv_used_blocks", replica).set(data["kv_used_blocks"])
        elif kind == "admitted":
            registry.counter("serving_admissions_total", replica).inc()
        elif kind == "preempted":
            registry.counter("serving_preemptions_total", replica).inc()
        elif kind == "kv_shared_alloc":
            hits = data.get("shared_ref_hits", 0) + data.get("shared_revived", 0)
            if hits:
                registry.counter("kv_prefix_hits_total", replica).inc(hits)
            misses = data.get("shared_new", 0)
            if misses:
                registry.counter("kv_prefix_misses_total", replica).inc(misses)
            reused = data.get("cached_tokens", 0)
            if reused:
                registry.counter("kv_prefix_tokens_reused_total", replica).inc(reused)
            if data.get("evictions"):
                registry.counter("kv_evictions_total", replica).inc(data["evictions"])
        elif kind in ("kv_alloc", "kv_free"):
            if data.get("evictions"):
                registry.counter("kv_evictions_total", replica).inc(data["evictions"])
        elif kind == "completed":
            registry.counter("serving_completions_total", replica).inc()
            track = self.tracer.requests.get(request_id)
            if track is not None:
                tenant = {"tenant": track.tenant if track.tenant is not None else ""}
                registry.histogram("request_e2e_s", tenant).observe(
                    max(time - track.arrival_time, 0.0)
                )
                if track.first_token_time is not None:
                    registry.histogram("request_ttft_s", tenant).observe(
                        max(track.first_token_time - track.arrival_time, 0.0)
                    )
                    if track.decode_tokens > 1:
                        tbt = (time - track.first_token_time) / (track.decode_tokens - 1)
                        registry.histogram("request_tbt_s", tenant).observe(max(tbt, 0.0))

    def finalize(self) -> None:
        """Close the sampler's final partial window (idempotent)."""
        if not self._finalized:
            self.sampler.finalize()
            self._finalized = True
