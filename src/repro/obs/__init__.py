"""Opt-in observability for the serving and cluster simulators.

Everything here rides the recorder-hook pattern of :mod:`repro.verify`:
simulators emit events onto any :class:`~repro.verify.events.EventSink`,
and this package provides sinks that aggregate instead of record —

* :class:`~repro.obs.telemetry.Telemetry` — the bundle (attach as
  ``recorder=``): metrics registry + span tracer + fleet sampler.
* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters, gauges
  and log-bucketed histograms with bounded-error percentiles.
* :class:`~repro.obs.trace.SpanTracer` — per-request span timelines with
  Perfetto ``trace_event`` JSON export.
* :class:`~repro.obs.sampler.FleetSampler` — cadenced fleet time-series
  (queue depth, token mix, KV usage, prefix-cache hit rate) whose window
  integrals reconcile exactly against the run's aggregate counters.
* :class:`~repro.obs.profiling.HostProfiler` — host wall/CPU/peak-RSS
  self-profiling for benchmark artifacts.
* :mod:`repro.obs.report` — the run-report generator
  (``python -m repro.obs.report``).

Telemetry off (the default ``recorder=None``) costs nothing: the hot paths
keep their single ``is not None`` check.  See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    DEFAULT_FLOOR,
    DEFAULT_GROWTH,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    normalize_labels,
)
from repro.obs.profiling import HostProfiler, peak_rss_mb
from repro.obs.sampler import DEFAULT_INTERVAL, FleetSampler
from repro.obs.telemetry import Telemetry
from repro.obs.trace import REQUESTS_PID, Span, SpanTracer

__all__ = [
    "DEFAULT_FLOOR",
    "DEFAULT_GROWTH",
    "DEFAULT_INTERVAL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "normalize_labels",
    "HostProfiler",
    "peak_rss_mb",
    "generate_report",
    "render_html",
    "render_markdown",
    "FleetSampler",
    "Telemetry",
    "REQUESTS_PID",
    "Span",
    "SpanTracer",
]

_REPORT_EXPORTS = {"generate_report", "render_html", "render_markdown"}


def __getattr__(name: str) -> object:
    # Lazy: keeps ``python -m repro.obs.report`` from double-importing the
    # report module through the package (runpy's sys.modules warning).
    if name in _REPORT_EXPORTS:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
