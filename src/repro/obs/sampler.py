"""Sim-clock time-series sampling of fleet state.

:class:`FleetSampler` is an :class:`~repro.verify.events.EventSink` that
snapshots fleet state at a configurable simulated-time cadence — the signal
feed the elastic control plane (:mod:`repro.cluster.control`) acts on.  Per
sample row and replica it records:

* queue depth (waiting requests) and running-set size,
* the executed prefill/decode token mix of the sample window,
* KV usage (used / cached / total blocks) and the *cumulative* prefix-cache
  hit/miss/reused-token counters,
* preemption and eviction counts for the window (rates = count / interval),
* fleet-level control-plane gauges, stamped identically on every replica row
  of a cut: ``live_replicas`` (known replicas past their cold start, neither
  draining nor retired), the window's ``rejections`` count and the derived
  ``shed_rate`` (rejections / interval).

Everything is derived from the one emission path the simulators already
have: state fields are updated from event payloads, and a row is cut
whenever a globally monotone event (``step`` / ``routed`` /
``transfer_delivered``) crosses the next sample boundary.  Because rows are
integrals of the same counters ``ServingMetrics`` / ``KVCacheStats``
aggregate, the series is *exactly* reconcilable against the run's totals —
``tests/test_obs_sampler.py`` pins ``sum(window deltas) == counter totals``
(the CounterPoint discipline: sampled telemetry must refute or confirm the
aggregate counters, never drift from them).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.verify.events import GLOBAL_CLOCK_KINDS, EventSink

#: Default sampling cadence in simulated seconds.  Serving iterations run
#: O(10-100 ms); half a second keeps a multi-minute trace to a few hundred
#: rows while still resolving queue build-ups (see docs/observability.md).
DEFAULT_INTERVAL = 0.5


@dataclass
class _ReplicaState:
    """Live per-replica aggregates between samples."""

    queue_depth: int = 0
    running: int = 0
    kv_used_blocks: int = 0
    kv_cached_blocks: int = 0
    kv_total_blocks: int = 0
    # Window accumulators (reset every sample).
    prefill_tokens: int = 0
    decode_tokens: int = 0
    admissions: int = 0
    completions: int = 0
    preemptions: int = 0
    evictions: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_tokens_reused: int = 0
    shared_admissions: int = 0
    double_frees: int = 0
    # Run-cumulative counters (never reset; the reconciliation anchors).
    cum_prefill_tokens: int = 0
    cum_decode_tokens: int = 0
    cum_completions: int = 0
    cum_preemptions: int = 0
    cum_evictions: int = 0
    cum_prefix_hits: int = 0
    cum_prefix_misses: int = 0
    cum_prefix_tokens_reused: int = 0
    cum_shared_admissions: int = 0
    cum_double_frees: int = 0

    def reset_window(self) -> None:
        self.prefill_tokens = 0
        self.decode_tokens = 0
        self.admissions = 0
        self.completions = 0
        self.preemptions = 0
        self.evictions = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.prefix_tokens_reused = 0
        self.shared_admissions = 0
        self.double_frees = 0


class FleetSampler(EventSink):
    """Cadenced fleet-state snapshots derived from the event stream."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self.rows: list[dict[str, Any]] = []
        self._replicas: dict[int, _ReplicaState] = {}
        self._next_sample = interval
        self._last_time = 0.0
        # Control-plane fleet state (all empty/zero without a control plane).
        self._scaled_up: dict[int, float] = {}  # replica -> cold-start end
        self._draining: set[int] = set()
        self._retired: set[int] = set()
        self._rejections_window = 0
        self._rejections_cum = 0

    # ------------------------------------------------------------- sink API

    def clear(self) -> None:
        self.rows.clear()
        self._replicas.clear()
        self._next_sample = self.interval
        self._last_time = 0.0
        self._scaled_up.clear()
        self._draining.clear()
        self._retired.clear()
        self._rejections_window = 0
        self._rejections_cum = 0

    def _state(self, replica_id: int) -> _ReplicaState:
        state = self._replicas.get(replica_id)
        if state is None:
            state = _ReplicaState()
            self._replicas[replica_id] = state
        return state

    def emit(
        self,
        kind: str,
        time: float,
        replica_id: int = -1,
        request_id: int = -1,
        **data: Any,
    ) -> None:
        # Cut any due sample rows *before* applying a globally monotone
        # event, so each row describes the state as of its boundary.
        if kind in GLOBAL_CLOCK_KINDS:
            while time > self._next_sample:
                self._cut_row(self._next_sample)
                self._next_sample += self.interval
            self._last_time = max(self._last_time, time)

        # Control-plane events mutate fleet-level state only; handled before
        # the per-replica lookup because ``rejected`` carries replica_id=-1
        # (a shed request was never assigned a replica) and a scale event
        # must not fabricate an active replica bucket.
        if kind == "rejected":
            self._rejections_window += 1
            self._rejections_cum += 1
            return
        if kind == "scaled_up":
            self._scaled_up[replica_id] = data.get("ready_at", time)
            return
        if kind == "drain_started":
            self._draining.add(replica_id)
            return
        if kind == "scaled_down":
            self._draining.discard(replica_id)
            self._retired.add(replica_id)
            return

        state = self._state(replica_id)
        if kind == "arrival":
            state.queue_depth += 1
        elif kind == "admitted":
            state.queue_depth -= 1
            state.running += 1
            state.admissions += 1
        elif kind == "preempted":
            state.queue_depth += 1
            state.running -= 1
            state.preemptions += 1
            state.cum_preemptions += 1
        elif kind == "released":
            state.running -= 1
        elif kind == "completed":
            state.completions += 1
            state.cum_completions += 1
        elif kind == "chunk_executed":
            tokens = data.get("tokens", 0)
            if data.get("phase") == "prefill":
                state.prefill_tokens += tokens
                state.cum_prefill_tokens += tokens
            else:
                state.decode_tokens += tokens
                state.cum_decode_tokens += tokens
        elif kind in ("kv_alloc", "kv_free", "kv_shared_alloc", "kv_double_free"):
            if "used_blocks" in data:
                state.kv_used_blocks = data["used_blocks"]
                state.kv_cached_blocks = data.get("cached_blocks", 0)
                state.kv_total_blocks = data.get("total_blocks", 0)
            evictions = data.get("evictions", 0)
            state.evictions += evictions
            state.cum_evictions += evictions
            if kind == "kv_shared_alloc":
                hits = data.get("shared_ref_hits", 0) + data.get("shared_revived", 0)
                misses = data.get("shared_new", 0)
                reused = data.get("cached_tokens", 0)
                state.prefix_hits += hits
                state.prefix_misses += misses
                state.prefix_tokens_reused += reused
                state.cum_prefix_hits += hits
                state.cum_prefix_misses += misses
                state.cum_prefix_tokens_reused += reused
                state.shared_admissions += 1
                state.cum_shared_admissions += 1
            elif kind == "kv_double_free":
                state.double_frees += 1
                state.cum_double_frees += 1

    # ------------------------------------------------------------ sampling

    def _cut_row(self, sample_time: float) -> None:
        # Fleet gauges, stamped identically on every replica row of this cut:
        # live replicas (known, past cold start, not draining/retired) and the
        # window's shed traffic.  Without a control plane live == known.
        known = set(self._replicas) | set(self._scaled_up)
        live_replicas = sum(
            1
            for replica_id in known
            if replica_id not in self._retired
            and replica_id not in self._draining
            and self._scaled_up.get(replica_id, 0.0) <= sample_time + 1e-12
        )
        rejections = self._rejections_window
        shed_rate = round(rejections / self.interval, 6)
        for replica_id in sorted(self._replicas):
            state = self._replicas[replica_id]
            lookups = state.cum_prefix_hits + state.cum_prefix_misses
            self.rows.append(
                {
                    "time_s": round(sample_time, 9),
                    "replica_id": replica_id,
                    "live_replicas": live_replicas,
                    "rejections": rejections,
                    "shed_rate": shed_rate,
                    "queue_depth": state.queue_depth,
                    "running": state.running,
                    "prefill_tokens": state.prefill_tokens,
                    "decode_tokens": state.decode_tokens,
                    "admissions": state.admissions,
                    "completions": state.completions,
                    "preemptions": state.preemptions,
                    "evictions": state.evictions,
                    "prefix_hits": state.prefix_hits,
                    "prefix_misses": state.prefix_misses,
                    "prefix_tokens_reused": state.prefix_tokens_reused,
                    "shared_admissions": state.shared_admissions,
                    "double_frees": state.double_frees,
                    "kv_used_blocks": state.kv_used_blocks,
                    "kv_cached_blocks": state.kv_cached_blocks,
                    "kv_total_blocks": state.kv_total_blocks,
                    "kv_utilization": (
                        round(state.kv_used_blocks / state.kv_total_blocks, 6)
                        if state.kv_total_blocks
                        else 0.0
                    ),
                    "prefix_hit_rate": (
                        round(state.cum_prefix_hits / lookups, 6) if lookups else 0.0
                    ),
                }
            )
            state.reset_window()
        self._rejections_window = 0

    def finalize(self) -> None:
        """Cut the final partial window (call once, after the run drains).

        The last row lands at the final event time, so window integrals
        cover the whole run even when the makespan is not a multiple of the
        cadence.
        """
        end = max(self._last_time, self._next_sample - self.interval)
        if self._replicas:
            self._cut_row(end)

    # ------------------------------------------------------------- queries

    def replica_series(self, replica_id: int) -> list[dict[str, Any]]:
        """All sample rows of one replica, in time order."""
        return [row for row in self.rows if row["replica_id"] == replica_id]

    def fleet_series(self) -> list[dict[str, Any]]:
        """Per-sample fleet aggregates (sums over replicas, means for rates)."""
        by_time: dict[float, list[dict[str, Any]]] = {}
        for row in self.rows:
            by_time.setdefault(row["time_s"], []).append(row)
        summed = (
            "queue_depth",
            "running",
            "prefill_tokens",
            "decode_tokens",
            "admissions",
            "completions",
            "preemptions",
            "evictions",
            "prefix_hits",
            "prefix_misses",
            "prefix_tokens_reused",
            "shared_admissions",
            "double_frees",
            "kv_used_blocks",
            "kv_cached_blocks",
            "kv_total_blocks",
        )
        series: list[dict[str, Any]] = []
        for time_s in sorted(by_time):
            rows = by_time[time_s]
            fleet: dict[str, Any] = {"time_s": time_s, "replicas": len(rows)}
            # Fleet gauges are identical on every row of a cut: carry, not sum.
            for gauge in ("live_replicas", "rejections", "shed_rate"):
                fleet[gauge] = rows[0][gauge]
            for key in summed:
                fleet[key] = sum(row[key] for row in rows)
            fleet["kv_utilization"] = (
                round(fleet["kv_used_blocks"] / fleet["kv_total_blocks"], 6)
                if fleet["kv_total_blocks"]
                else 0.0
            )
            series.append(fleet)
        return series

    def window_totals(self) -> dict[str, int]:
        """Integrate every per-window column over all rows and replicas.

        These totals must equal the run's aggregate counters exactly
        (``ServingMetrics`` / ``KVCacheStats``) — the reconciliation the
        golden test pins.
        """
        keys = (
            "prefill_tokens",
            "decode_tokens",
            "admissions",
            "completions",
            "preemptions",
            "evictions",
            "prefix_hits",
            "prefix_misses",
            "prefix_tokens_reused",
            "shared_admissions",
            "double_frees",
        )
        totals = {key: sum(row[key] for row in self.rows) for key in keys}
        # Rejections are fleet-level (stamped on every replica row of a cut),
        # so integrate the sampler's own counter rather than summing rows.
        totals["rejections"] = self._rejections_cum
        return totals

    def to_csv(self, path: str | Path) -> Path:
        """Persist the sample rows as a CSV time-series."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns = list(self.rows[0].keys()) if self.rows else ["time_s", "replica_id"]
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return path
